package graphblas

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/faultinject"
	"pushpull/internal/sparse"
)

// This file is the range-sharded MxV pipeline (Descriptor.Shards > 1): the
// output index space splits into contiguous edge-balanced destination
// ranges (geometry cached on the matrix), the direction planner runs once
// per shard over shard-local frontier and mask densities, and the shards
// execute concurrently — pull shards scanning their own rows, push shards
// scattering through the destination-sharded CSC — each into its disjoint
// slice of one bitmap output. Everything else (masking, accumulate,
// aliasing, cancellation, fault capture, corrector feedback, input format
// settling toward the planned direction) mirrors the unsharded MxV
// pipeline; whole-operation hysteresis is replaced by per-shard sticky
// flips inside PlanShards, the per-shard correctors carry the between-call
// memory, and the output's format is stitched from the shard mix after the
// kernel.

// shardExactFrontierFrac bounds the frontier density up to which a
// non-sparse frontier is expanded back into an index list for exact
// per-shard edge counts. Above it the expansion (and the S·nnz cut
// subtractions it feeds) costs more than the estimate error, and the
// decisions stop being sensitive to exactness — a near-dense frontier
// pulls everywhere.
const shardExactFrontierFrac = 1.0 / 8

// effShards returns the effective shard count for one call: the
// descriptor's knob, gated off when NoAutoConvert pins format-follows-
// storage dispatch (which bypasses the planner sharding needs) and clamped
// by the unsharded fallback for degenerate outputs.
func effShards(desc *Descriptor, outDim int) int {
	if desc == nil || desc.Shards <= 1 || desc.NoAutoConvert || outDim <= 0 {
		return 1
	}
	return desc.Shards
}

// mxvSharded runs one MxV as a set of per-shard direction decisions and
// range-local kernels. Preconditions (checked by the caller): operands
// validated, ss non-nil with ss.Shards() > 1.
func (s OpSpec[T]) mxvSharded(sr Semiring[T], a *Matrix[T], u *Vector[T], rowG, colG *sparse.CSR[T], ss *core.ShardSet, outDim int) (dir TraversalDirection, err error) {
	w, mask, accum, desc := s.w, s.mask, s.accum, s.desc
	var force *core.Direction
	switch desc.Direction {
	case ForcePush:
		d := core.Push
		force = &d
	case ForcePull:
		d := core.Pull
		force = &d
	}

	csr := toCoreSR(sr)
	ws := desc.workspace()
	pooled := ws == nil
	if pooled {
		ws = AcquireWorkspace(a.NRows(), a.NCols())
		defer ws.Release()
	}
	defer captureFault(ws, &err)
	opts := desc.coreOpts(ws)

	var mv core.MaskView
	useMask := mask != nil
	if useMask {
		mv = core.MaskView{KnownEmpty: mask.maskKnownEmpty()}
		mv.Words, mv.Bits = mask.maskLowerWS(ws)
		mv.Scmp = desc.StructuralComplement
		mv.List = desc.MaskAllowList
	}

	// The whole-operation evidence the per-shard decisions refine. Unlike
	// planMxV, no frontier degree sum is taken here — PlanShards reads each
	// shard's exact edge count off the cut table, which is cheaper than the
	// CSC.Ptr walk (one subtraction per shard-column instead of a row scan).
	in := core.PlanInput{
		NNZ:           u.NVals(),
		N:             u.Size(),
		OutRows:       outDim,
		PushEdges:     -1,
		AvgDeg:        core.AvgRowDegree(rowG.NNZ(), rowG.Rows),
		MaskAllowFrac: 1,
		Force:         force,
		InKind:        kindOf(u.Format()),
		SwitchPoint:   desc.SwitchPoint,
	}
	if desc.CostModel != nil {
		in.Model = *desc.CostModel
	}
	in.Correct = desc.Corrector
	if useMask && outDim > 0 {
		if desc.MaskAllowList != nil {
			in.MaskAllowFrac = float64(len(desc.MaskAllowList)) / float64(outDim)
		} else {
			frac := float64(mask.maskNVals()) / float64(outDim)
			if mv.Scmp {
				frac = 1 - frac
			}
			in.MaskAllowFrac = frac
		}
	}
	frontier, _ := u.SparseIndices()
	if frontier == nil && in.NNZ > 0 && in.N > 0 &&
		float64(in.NNZ) <= shardExactFrontierFrac*float64(in.N) {
		// A word-packed or bitmap frontier is still exact evidence — the
		// common case mid-traversal, after a pull decision settled the
		// format. Expand it once into workspace scratch rather than letting
		// PlanShards fall back to density×InEdges estimates, which assume
		// frontier out-degrees follow the average and underprice push badly
		// on skewed graphs (a frontier brushing the hub core carries an
		// order of magnitude more edges than its cardinality suggests).
		// Dense and high-density frontiers skip the expansion: there the
		// uniform estimate is tight and pull dominates every shard anyway.
		switch u.Format() {
		case Bitset:
			ws.frontierIdx = core.BitsetIndices(u.dwords, ws.frontierIdx[:0])
			frontier = ws.frontierIdx
		case Bitmap:
			buf := ws.frontierIdx[:0]
			for i, p := range u.dpresent {
				if p {
					buf = append(buf, uint32(i))
				}
			}
			ws.frontierIdx = buf
			frontier = buf
		}
	}

	plans := ws.shardPlansFor(ss.Shards())
	core.PlanShards(in, ss, frontier, mv, useMask, plans)
	plan := summarizeShards(plans, in)
	dir = plan.Dir
	if desc.Plan != nil {
		*desc.Plan = plan
	}
	if force == nil {
		// Settle the input's storage toward the shard majority, mirroring
		// the unsharded pipeline: a sparse frontier on a majority-pull
		// schedule converts to the word-packed probe layout once, instead
		// of re-materializing the arena's probe bitmap on every call
		// (an O(nnz) scatter plus scrub per iteration that the unsharded
		// pull never pays after its first call). Push operands off a
		// bitset are a cheap word scan, and exact shard planning survives
		// the conversion through the frontier-index expansion above.
		u.settleFormat(plan, effConvertPoint(desc))
	}
	if err = s.ctxErr(); err != nil {
		return dir, err
	}

	timed := desc.Plan != nil || desc.Corrector != nil
	var start time.Time
	if timed {
		start = time.Now()
	}
	if accum != nil {
		t := scratchVectorFor[T](ws, outDim)
		mxvShardedInto(t, u, useMask, mv, rowG, colG, ss, plans, plan, timed, csr, opts, ws, desc)
		if timed {
			plan.MeasuredNs = float64(time.Since(start).Nanoseconds())
		}
		if err = s.ctxErr(); err != nil {
			return dir, err
		}
		mergeInto(ws, w, t, accum, false, core.MaskView{})
	} else {
		mxvShardedInto(w, u, useMask, mv, rowG, colG, ss, plans, plan, timed, csr, opts, ws, desc)
		if timed {
			plan.MeasuredNs = float64(time.Since(start).Nanoseconds())
		}
		if err = s.ctxErr(); err != nil {
			return dir, err
		}
	}
	if timed {
		// Per-shard feedback: each shard's (predicted, measured) pair folds
		// into its own corrector key, so hub-shard timings never bend
		// tail-shard estimates. Only completed kernels reach this point.
		// The per-direction sums also fold into the parent corrector as the
		// pooled prior a shard reads for a direction it has never run (see
		// Corrector.Shard) — one pooled observation per direction per call.
		var predSum, measSum [2]float64
		for i := range plans {
			desc.Corrector.Shard(i).Observe(plans[i].Dir, plans[i].PredictedNs, plans[i].MeasuredNs)
			if plans[i].PredictedNs > 0 && plans[i].MeasuredNs > 0 {
				predSum[plans[i].Dir] += plans[i].PredictedNs
				measSum[plans[i].Dir] += plans[i].MeasuredNs
			}
		}
		desc.Corrector.Observe(core.Push, predSum[core.Push], measSum[core.Push])
		desc.Corrector.Observe(core.Pull, predSum[core.Pull], measSum[core.Pull])
		if desc.Plan != nil {
			desc.Plan.MeasuredNs = plan.MeasuredNs
			desc.Plan.OutKind = kindOf(w.format)
		}
	}
	return dir, nil
}

// summarizeShards folds the per-shard records into the whole-operation
// plan: majority direction (ties go to push, matching the planner's
// empty-frontier bias), summed costs, Hybrid when the mix is real.
func summarizeShards(plans []core.ShardPlan, in core.PlanInput) core.Plan {
	pulls := 0
	plan := core.Plan{
		Op:            core.OpMxV,
		Rule:          core.RuleSharded,
		FrontierNNZ:   in.NNZ,
		N:             in.N,
		MaskAllowFrac: in.MaskAllowFrac,
		Shards:        plans,
	}
	for i := range plans {
		plan.PushCost += plans[i].PushCost
		plan.PullCost += plans[i].PullCost
		plan.PredictedNs += plans[i].PredictedNs
		if plans[i].Dir == core.Pull {
			pulls++
		}
	}
	if pulls*2 > len(plans) {
		plan.Dir = core.Pull
	}
	plan.Hybrid = pulls > 0 && pulls < len(plans)
	return plan
}

// mxvShardedInto runs the sharded kernel into dst, bouncing through the
// workspace scratch vector when dst aliases the input or mask (same
// discipline as mxvInto). The output is produced in bitmap form — every
// shard owns a disjoint slice of one presence array — then stitched toward
// the lattice kind the shard mix implies: an all-push run whose result
// stayed sparse compacts to a sparse list, anything else keeps the bitmap
// (with the usual full-pattern promotion to Dense).
func mxvShardedInto[T comparable](dst *Vector[T], u *Vector[T], useMask bool, mv core.MaskView, rowG, colG *sparse.CSR[T], ss *core.ShardSet, plans []core.ShardPlan, plan core.Plan, timed bool, sr core.SR[T], opts core.Opts, ws *Workspace, desc *Descriptor) {
	faultinject.Fire(faultinject.SiteMxVKernel)
	target := dst
	aliased := sameVector(dst, u) || (useMask && (sharesBits(dst, mv.Bits) || sharesWords(dst, mv.Words)))
	if aliased {
		target = scratchVectorFor[T](ws, dst.Size())
	}
	wVal, wPresent := target.ensureDenseBuffers()
	nvals := core.ShardedMxv(wVal, wPresent, rowG, colG, ss, plans, u.kernelView(), mv, useMask, timed, sr, opts)
	target.setDenseCount(nvals)
	if !plan.Hybrid && plan.Dir == core.Push && target.format == Bitmap &&
		float64(nvals) < effConvertPoint(desc)*float64(target.Size()) {
		// A uniformly-pushed sparse result would have come out of the
		// unsharded pipeline as a sparse list; compact so the format
		// lattice sees the same kind (warm capacity — no steady-state
		// allocation).
		target.ToSparse()
	}
	if aliased {
		swapStorage(dst, target)
	}
}

package graphblas

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pushpull/internal/core"
)

// The serving contract under test: one Matrix shared by every goroutine,
// everything mutable — vectors, descriptors, correctors, plan sinks,
// workspaces — owned per traversal. Run under -race this pins the claim
// the package docs make ("one Descriptor per goroutine, one Matrix for
// everyone"), including the lazily built shard-set cache, which every
// sharded traversal below hits concurrently on first use.

// refBFS is the traversal oracle: plain queue BFS over the row adjacency
// (matching MxV's Transpose semantics, where the new frontier is the
// column pattern of the frontier's rows).
func refBFS(a *Matrix[bool], source int) []int32 {
	n := a.NRows()
	depths := make([]int32, n)
	for i := range depths {
		depths[i] = -1
	}
	depths[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		ind, _ := a.RowView(i)
		for _, j := range ind {
			if depths[j] < 0 {
				depths[j] = depths[i] + 1
				queue = append(queue, int(j))
			}
		}
	}
	return depths
}

// mxvBFS is the library-level traversal one concurrent query runs: the
// masked-MxV loop of algorithms.BFS reduced to its graphblas calls, with
// every piece of mutable state built locally.
func mxvBFS(a *Matrix[bool], source int, dir Direction, shards int) ([]int32, error) {
	n := a.NRows()
	sr := OrAndBool()
	f := NewVector[bool](n)
	if err := f.SetElement(source, true); err != nil {
		return nil, err
	}
	visited := NewVector[bool](n)
	visited.ToBitset()
	if err := visited.SetElement(source, true); err != nil {
		return nil, err
	}
	depths := make([]int32, n)
	for i := range depths {
		depths[i] = -1
	}
	depths[source] = 0

	ws := AcquireWorkspace(n, n)
	defer ws.Release()
	var corr core.Corrector
	var plan core.Plan
	desc := &Descriptor{
		Transpose:            true,
		StructureOnly:        true,
		StructuralComplement: true,
		Direction:            dir,
		Shards:               shards,
		Workspace:            ws,
		Corrector:            &corr,
		Plan:                 &plan,
		Context:              context.Background(),
	}
	for depth := int32(1); f.NVals() > 0; depth++ {
		if _, err := Into(f).Mask(visited).With(desc).MxV(sr, a, f); err != nil {
			return nil, err
		}
		f.Iterate(func(i int, _ bool) bool {
			if depths[i] < 0 {
				depths[i] = depth
			}
			return true
		})
		if err := Into(visited).AssignVector(f); err != nil {
			return nil, err
		}
	}
	return depths, nil
}

func TestConcurrentTraversalsSharedMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 400
	var rows, cols []uint32
	var vals []bool
	for i := 0; i < n; i++ {
		deg := 1 + rng.Intn(6)
		for k := 0; k < deg; k++ {
			rows = append(rows, uint32(i))
			cols = append(cols, uint32(rng.Intn(n)))
			vals = append(vals, true)
		}
	}
	a, err := NewMatrixFromCOO(n, n, rows, cols, vals, func(x, _ bool) bool { return x })
	if err != nil {
		t.Fatal(err)
	}

	sources := []int{0, 17, n / 2, n - 1}
	want := make(map[int][]int32, len(sources))
	for _, s := range sources {
		want[s] = refBFS(a, s)
	}

	// 16 goroutines × 4 traversals over the one matrix, mixing auto,
	// forced-push, forced-pull and sharded (4-range) planning — sharded
	// runs race to build (then share) the matrix's cached shard set.
	configs := []struct {
		dir    Direction
		shards int
	}{
		{Auto, 0},
		{ForcePush, 0},
		{ForcePull, 0},
		{Auto, 4},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		cfg := configs[g%len(configs)]
		wg.Add(1)
		go func(g int, dir Direction, shards int) {
			defer wg.Done()
			for run := 0; run < 4; run++ {
				s := sources[(g+run)%len(sources)]
				got, err := mxvBFS(a, s, dir, shards)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d run %d: %v", g, run, err)
					return
				}
				for i := range got {
					if got[i] != want[s][i] {
						errs <- fmt.Errorf("goroutine %d run %d source %d: depth[%d] = %d, want %d",
							g, run, s, i, got[i], want[s][i])
						return
					}
				}
			}
		}(g, cfg.dir, cfg.shards)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

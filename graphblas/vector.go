package graphblas

import (
	"fmt"
	"math/bits"
	"sort"

	"pushpull/internal/core"
	"pushpull/internal/merge"
)

// Format names a Vector's current storage representation. The four
// formats form a lattice ordered by how much structure they materialize:
//
//	Sparse ⊂ {Bitset, Bitmap} ⊂ Dense
//
// Sparse is a sorted (index, value) pair list — the natural frontier
// representation for the push phase. Bitset and Bitmap are siblings: both
// keep a dense value array with an explicit presence pattern, Bitmap as
// one byte per position (the SPA layout of Gilbert, Moler and Schreiber),
// Bitset as one *bit* per position packed 64-to-a-uint64 — 8× smaller, so
// the pull side's complemented visited-mask probe touches an eighth of the
// memory, NVals is a popcount instead of a scan, and Boolean pattern
// algebra runs 64 positions per word op. Dense is a value array with
// *every* position stored — the presence probe disappears from kernel
// inner loops (PageRank ranks, converged depth vectors).
//
// Conversion rules: Sparse↔{Bitset, Bitmap} moves are driven by the
// direction planner (format follows the chosen direction, with hysteresis
// so a frontier hovering at the crossover does not flap; the planner's
// pull-side conversion lands in Bitset). Bitmap promotes to Dense
// automatically and for free the moment its pattern fills (nvals == n);
// Dense demotes back to Bitmap the moment an element is removed. A full
// Bitset stays Bitset — its packed words remain the pattern authority —
// and kernels still skip per-element probes through word ops. Promotion
// never changes the stored pattern — a partial vector stays Bitset/Bitmap
// no matter how it is converted.
type Format int

const (
	// Sparse stores sorted (index, value) pairs.
	Sparse Format = iota
	// Bitmap stores a value array plus a presence bitmap ([]bool).
	Bitmap
	// Dense stores a value array with every position present.
	Dense
	// Bitset stores a value array plus a word-packed presence bitset
	// ([]uint64, 64 positions per word, tail bits zero).
	Bitset
)

// String returns "sparse", "bitmap", "dense" or "bitset".
func (f Format) String() string {
	switch f {
	case Sparse:
		return "sparse"
	case Bitmap:
		return "bitmap"
	case Bitset:
		return "bitset"
	default:
		return "dense"
	}
}

// Vector is a GraphBLAS vector of length n over element type T, stored in
// one of four formats (see Format). Kernels consume it through
// format-agnostic views (internal/core.VecView); MxV's direction planner
// decides push vs pull from an edge-based cost model and the storage
// format then follows the chosen direction.
//
// A Vector is not safe for concurrent mutation.
type Vector[T comparable] struct {
	n int

	format Format
	// Sparse representation: parallel slices, ind sorted ascending, unique.
	ind []uint32
	val []T
	// Bitmap/bitset/dense representation: value array of length n plus a
	// presence pattern — dpresent for Bitmap (and Dense, where it is kept
	// materialized and all-true so the object-model paths need no special
	// casing; kernels get a nil presence view instead), dwords for Bitset
	// (core.BitsetWords(n) packed words, tail bits zero). Exactly the
	// pattern named by format is authoritative; the other may be stale.
	dval     []T
	dpresent []bool
	dwords   []uint64
	nvals    int

	// Planner hysteresis: previous direction decision and frontier
	// population for this vector when it is used as an MxV input under
	// Direction == Auto.
	pstate core.PlanState
}

// NewVector returns an empty sparse vector of length n.
func NewVector[T comparable](n int) *Vector[T] {
	if n < 0 {
		panic("graphblas: negative vector length")
	}
	return &Vector[T]{n: n, format: Sparse}
}

// Size returns the vector's length (the GraphBLAS "size").
func (v *Vector[T]) Size() int { return v.n }

// NVals returns the number of stored elements.
func (v *Vector[T]) NVals() int {
	if v.format == Sparse {
		return len(v.ind)
	}
	return v.nvals
}

// Format reports the current storage representation.
func (v *Vector[T]) Format() Format { return v.format }

// Clear removes all stored elements, keeping capacity where possible, and
// resets the vector to sparse format with cleared hysteresis.
func (v *Vector[T]) Clear() {
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	if v.dpresent != nil {
		clearBools(v.dpresent)
	}
	if v.dwords != nil {
		core.BitsetZero(v.dwords)
	}
	v.nvals = 0
	v.format = Sparse
	v.pstate.Reset()
}

func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

// Build initializes the vector from (index, value) pairs, replacing any
// existing contents. Indices need not be sorted but must be in range;
// duplicates are folded with dup (last write wins when dup is nil).
func (v *Vector[T]) Build(indices []uint32, values []T, dup BinaryOp[T]) error {
	if len(indices) != len(values) {
		return fmt.Errorf("%w: %d indices, %d values", ErrInvalidValue, len(indices), len(values))
	}
	for _, i := range indices {
		if int(i) >= v.n {
			return fmt.Errorf("%w: index %d in vector of size %d", ErrIndexOutOfBounds, i, v.n)
		}
	}
	v.Clear()
	ind := append([]uint32(nil), indices...)
	val := append([]T(nil), values...)
	if v.n > 0 {
		merge.SortPairs(ind, val, uint32(v.n-1))
	}
	w := 0
	for i := range ind {
		if w > 0 && ind[w-1] == ind[i] {
			if dup != nil {
				val[w-1] = dup(val[w-1], val[i])
			} else {
				val[w-1] = val[i]
			}
			continue
		}
		ind[w] = ind[i]
		val[w] = val[i]
		w++
	}
	v.ind = ind[:w]
	v.val = val[:w]
	return nil
}

// SetElement stores value at index i, overwriting any existing element.
func (v *Vector[T]) SetElement(i int, value T) error {
	if i < 0 || i >= v.n {
		return fmt.Errorf("%w: index %d in vector of size %d", ErrIndexOutOfBounds, i, v.n)
	}
	if v.format == Bitset {
		if !core.BitsetGet(v.dwords, i) {
			core.BitsetSet(v.dwords, i)
			v.nvals++
		}
		v.dval[i] = value
		return nil
	}
	if v.format != Sparse {
		if !v.dpresent[i] {
			v.dpresent[i] = true
			v.nvals++
			v.maybePromoteFull()
		}
		v.dval[i] = value
		return nil
	}
	pos := sort.Search(len(v.ind), func(k int) bool { return v.ind[k] >= uint32(i) })
	if pos < len(v.ind) && v.ind[pos] == uint32(i) {
		v.val[pos] = value
		return nil
	}
	v.ind = append(v.ind, 0)
	v.val = append(v.val, value)
	copy(v.ind[pos+1:], v.ind[pos:])
	copy(v.val[pos+1:], v.val[pos:])
	v.ind[pos] = uint32(i)
	v.val[pos] = value
	return nil
}

// RemoveElement deletes the element at index i if present. Removing from a
// Dense vector demotes it to Bitmap (its pattern is no longer full).
func (v *Vector[T]) RemoveElement(i int) error {
	if i < 0 || i >= v.n {
		return fmt.Errorf("%w: index %d in vector of size %d", ErrIndexOutOfBounds, i, v.n)
	}
	if v.format == Bitset {
		if core.BitsetGet(v.dwords, i) {
			core.BitsetUnset(v.dwords, i)
			v.nvals--
		}
		return nil
	}
	if v.format != Sparse {
		if v.dpresent[i] {
			v.format = Bitmap
			v.dpresent[i] = false
			v.nvals--
		}
		return nil
	}
	pos := sort.Search(len(v.ind), func(k int) bool { return v.ind[k] >= uint32(i) })
	if pos < len(v.ind) && v.ind[pos] == uint32(i) {
		copy(v.ind[pos:], v.ind[pos+1:])
		copy(v.val[pos:], v.val[pos+1:])
		v.ind = v.ind[:len(v.ind)-1]
		v.val = v.val[:len(v.val)-1]
	}
	return nil
}

// ExtractElement returns the element at index i, or ErrNoValue if absent.
func (v *Vector[T]) ExtractElement(i int) (T, error) {
	var zero T
	if i < 0 || i >= v.n {
		return zero, fmt.Errorf("%w: index %d in vector of size %d", ErrIndexOutOfBounds, i, v.n)
	}
	if v.format == Bitset {
		if core.BitsetGet(v.dwords, i) {
			return v.dval[i], nil
		}
		return zero, ErrNoValue
	}
	if v.format != Sparse {
		if v.dpresent[i] {
			return v.dval[i], nil
		}
		return zero, ErrNoValue
	}
	pos := sort.Search(len(v.ind), func(k int) bool { return v.ind[k] >= uint32(i) })
	if pos < len(v.ind) && v.ind[pos] == uint32(i) {
		return v.val[pos], nil
	}
	return zero, ErrNoValue
}

// Dup returns a deep copy.
func (v *Vector[T]) Dup() *Vector[T] {
	out := &Vector[T]{
		n:      v.n,
		format: v.format,
		nvals:  v.nvals,
		pstate: v.pstate,
	}
	out.ind = append([]uint32(nil), v.ind...)
	out.val = append([]T(nil), v.val...)
	if v.dval != nil {
		out.dval = append([]T(nil), v.dval...)
		out.dpresent = append([]bool(nil), v.dpresent...)
	}
	if v.dwords != nil {
		out.dwords = append([]uint64(nil), v.dwords...)
	}
	return out
}

// Iterate calls fn for every stored element in ascending index order,
// stopping early if fn returns false.
func (v *Vector[T]) Iterate(fn func(i int, value T) bool) {
	switch v.format {
	case Sparse:
		for k, idx := range v.ind {
			if !fn(int(idx), v.val[k]) {
				return
			}
		}
	case Dense:
		for i := 0; i < v.n; i++ {
			if !fn(i, v.dval[i]) {
				return
			}
		}
	case Bitset:
		for wi, w := range v.dwords {
			base := wi << 6
			for ; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				if !fn(i, v.dval[i]) {
					return
				}
			}
		}
	default:
		for i := 0; i < v.n; i++ {
			if v.dpresent[i] {
				if !fn(i, v.dval[i]) {
					return
				}
			}
		}
	}
}

// ToBitmap converts to the bitmap representation (sparse2bitmap). Dense
// vectors demote in O(1) — their presence array is already materialized
// all-true; bitset vectors expand their packed words into presence bytes.
// No-op if already bitmap.
func (v *Vector[T]) ToBitmap() {
	switch v.format {
	case Bitmap:
		return
	case Dense:
		v.format = Bitmap
		return
	case Bitset:
		v.ensurePresent()
		core.BitsetExpand(v.dpresent, v.dwords)
		v.nvals = core.BitsetCount(v.dwords)
		core.BitsetZero(v.dwords)
		v.format = Bitmap
		v.maybePromoteFull()
		return
	}
	if v.dval == nil {
		v.dval = make([]T, v.n)
	}
	v.ensurePresent()
	clearBools(v.dpresent)
	for k, idx := range v.ind {
		v.dval[idx] = v.val[k]
		v.dpresent[idx] = true
	}
	v.nvals = len(v.ind)
	v.format = Bitmap
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	v.maybePromoteFull()
}

// ToBitset converts to the word-packed bitset representation: sparse
// vectors scatter single bits (and values) into place, bitmap and dense
// vectors pack their presence bytes 64-at-a-time. No-op if already bitset.
// The packed words are 1/8 the size of the bitmap's presence array — the
// representation to keep a visited set or reusable mask in.
func (v *Vector[T]) ToBitset() {
	switch v.format {
	case Bitset:
		return
	case Bitmap, Dense:
		v.ensureWords()
		v.nvals = core.BitsetFromBools(v.dwords, v.dpresent)
		v.format = Bitset
		return
	}
	if v.dval == nil {
		v.dval = make([]T, v.n)
	}
	v.ensureWords()
	core.BitsetZero(v.dwords)
	for k, idx := range v.ind {
		v.dval[idx] = v.val[k]
	}
	core.BitsetScatter(v.dwords, v.ind)
	v.nvals = len(v.ind)
	v.format = Bitset
	v.ind = v.ind[:0]
	v.val = v.val[:0]
}

// ensurePresent materializes the presence-byte array.
func (v *Vector[T]) ensurePresent() {
	if v.dpresent == nil {
		v.dpresent = make([]bool, v.n)
	}
}

// ensureWords materializes the packed presence words.
func (v *Vector[T]) ensureWords() {
	if v.dwords == nil {
		v.dwords = make([]uint64, core.BitsetWords(v.n))
	}
}

// ToDense densifies as far as the stored pattern allows: the vector
// converts to bitmap layout, then promotes to the Dense format exactly
// when every position is present (nvals == n). Promotion never invents
// elements — a partial vector lands in (and stays) Bitmap. Use Fill to
// make a vector genuinely full.
func (v *Vector[T]) ToDense() {
	if v.format == Dense {
		return
	}
	v.ToBitmap()
}

// Fill stores value at every position, leaving the vector Dense. This is
// the one pattern-changing densification (PageRank-style value-complete
// vectors); ToDense never invents elements. A Bitset vector's stale words
// are cleared so a later ToBitset repack starts from the live pattern.
func (v *Vector[T]) Fill(value T) {
	if v.dval == nil {
		v.dval = make([]T, v.n)
	}
	v.ensurePresent()
	for i := range v.dval {
		v.dval[i] = value
		v.dpresent[i] = true
	}
	if v.format == Bitset {
		core.BitsetZero(v.dwords)
	}
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	v.nvals = v.n
	v.format = Dense
}

// ToSparse converts to the sparse representation (bitmap2sparse /
// bitset2sparse — the latter enumerates set bits by trailing-zero counts,
// so an empty word costs one load). No-op if already sparse.
func (v *Vector[T]) ToSparse() {
	if v.format == Sparse {
		return
	}
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	if v.format == Bitset {
		for wi, w := range v.dwords {
			base := wi << 6
			for ; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				v.ind = append(v.ind, uint32(i))
				v.val = append(v.val, v.dval[i])
			}
		}
		core.BitsetZero(v.dwords)
		v.nvals = 0
		v.format = Sparse
		return
	}
	for i := 0; i < v.n; i++ {
		if v.dpresent[i] {
			v.ind = append(v.ind, uint32(i))
			v.val = append(v.val, v.dval[i])
		}
	}
	clearBools(v.dpresent)
	v.nvals = 0
	v.format = Sparse
}

// maybePromoteFull promotes Bitmap to Dense when the pattern has filled.
// The presence array stays materialized (and all-true), so demotion and
// the object-model paths cost nothing.
func (v *Vector[T]) maybePromoteFull() {
	if v.format == Bitmap && v.nvals == v.n && v.n > 0 {
		v.format = Dense
	}
}

// settleFormat moves the vector's storage toward the planned direction's
// preferred format, with the plan's trend as the hysteresis gate: pull
// wants O(1) probes (bitmap or denser, converted unconditionally since the
// kernel requires it); push wants the sparse list back once the frontier
// has shrunk below the switch-point while shrinking.
func (v *Vector[T]) settleFormat(plan core.Plan, switchPoint float64) {
	switch plan.Dir {
	case core.Pull:
		if v.format == Sparse {
			// The pull conversion lands in the word-packed format: the
			// kernel probes single bits either way, and the 8×-smaller
			// pattern is what a frontier reused as next iteration's mask
			// wants to be stored in.
			v.ToBitset()
		}
	case core.Push:
		if (v.format == Bitmap || v.format == Bitset) && v.n > 0 && plan.Shrinking &&
			float64(v.nvals)/float64(v.n) < switchPoint {
			v.ToSparse()
		}
	}
}

// kernelView lowers the vector's current storage into the format-agnostic
// view the kernels consume, without converting or copying.
func (v *Vector[T]) kernelView() core.VecView[T] {
	switch v.format {
	case Sparse:
		return core.SparseVec(v.n, v.ind, v.val)
	case Dense:
		return core.DenseVec(v.dval)
	case Bitset:
		return core.BitsetVec(v.dval, v.dwords, v.nvals)
	default:
		return core.BitmapVec(v.dval, v.dpresent, v.nvals)
	}
}

// sparseView returns the sparse arrays, converting if needed.
func (v *Vector[T]) sparseView() ([]uint32, []T) {
	v.ToSparse()
	return v.ind, v.val
}

// denseView returns the bitmap-layout arrays (values + presence),
// converting sparse and bitset vectors first. Dense vectors hand out their
// all-true presence array.
func (v *Vector[T]) denseView() ([]T, []bool) {
	if v.format == Sparse || v.format == Bitset {
		v.ToBitmap()
	}
	return v.dval, v.dpresent
}

// DenseView converts the vector to bitmap layout if needed and exposes its
// raw value and presence arrays. The slices alias internal storage: callers
// may read them freely but must not grow them, and writes bypass NVals
// bookkeeping (call RecountDense afterwards). Algorithm layers use this to
// probe bitmaps without per-element calls.
func (v *Vector[T]) DenseView() (values []T, present []bool) {
	return v.denseView()
}

// SparseView sparsifies the vector if needed and exposes its raw index and
// value slices (sorted ascending). The slices alias internal storage and
// must be treated as read-only.
func (v *Vector[T]) SparseView() (indices []uint32, values []T) {
	return v.sparseView()
}

// BitsetView converts the vector to the word-packed bitset format if
// needed and exposes its raw value array and presence words (bit i of
// words[i/64]; tail bits zero). The slices alias internal storage: callers
// may read freely — single-bit probes against an 8×-smaller pattern than
// DenseView's presence bytes — and may write bits, but writes bypass NVals
// bookkeeping (call RecountDense afterwards, a popcount, not a scan).
func (v *Vector[T]) BitsetView() (values []T, words []uint64) {
	v.ToBitset()
	return v.dval, v.dwords
}

// SparseIndices returns the vector's index list without converting: ok is
// false (and indices nil) unless the vector is currently sparse. The
// direction planner uses it to read frontier out-degrees off CSC.Ptr in
// O(nnz) without disturbing the storage format.
func (v *Vector[T]) SparseIndices() (indices []uint32, ok bool) {
	if v.format != Sparse {
		return nil, false
	}
	return v.ind, true
}

// RecountDense refreshes NVals after a caller wrote the presence pattern
// exposed by DenseView or BitsetView directly, promoting to Dense if a
// bitmap pattern filled or demoting if it no longer is full. For bitset
// vectors the recount is a popcount over the packed words
// (math/bits.OnesCount64), not an O(n) scan. It is a no-op for sparse
// vectors.
func (v *Vector[T]) RecountDense() {
	switch v.format {
	case Sparse:
	case Bitset:
		v.nvals = core.BitsetCount(v.dwords)
	default:
		v.recountDense()
	}
}

// knownEmpty reports, conservatively, that the vector certainly stores no
// elements. Only the sparse representation answers true: a bitmap vector's
// nvals can be stale when callers write the presence array through
// DenseView without RecountDense, so its bitmap — not the counter — must
// stay the source of truth for kernel masks.
func (v *Vector[T]) knownEmpty() bool {
	return v.format == Sparse && len(v.ind) == 0
}

// setSparseResult installs kernel output (sorted unique indices) as the
// vector's contents, leaving it in sparse format.
func (v *Vector[T]) setSparseResult(ind []uint32, val []T) {
	v.ind = ind
	v.val = val
	if v.dpresent != nil {
		clearBools(v.dpresent)
	}
	if v.dwords != nil {
		core.BitsetZero(v.dwords)
	}
	v.nvals = 0
	v.format = Sparse
}

// setSparseCopy installs kernel output by copying it into the vector's own
// reusable index/value storage, leaving it in sparse format. Used when the
// source slices alias workspace scratch that the next kernel call will
// overwrite; steady-state cost is a copy into warm capacity, not an
// allocation.
func (v *Vector[T]) setSparseCopy(ind []uint32, val []T) {
	v.ind = append(v.ind[:0], ind...)
	v.val = append(v.val[:0], val...)
	if v.dpresent != nil {
		clearBools(v.dpresent)
	}
	if v.dwords != nil {
		core.BitsetZero(v.dwords)
	}
	v.nvals = 0
	v.format = Sparse
}

// setDenseCount records the stored-element count after a kernel reported
// how many outputs it wrote into the bitmap buffers, promoting to Dense
// when the pattern filled.
func (v *Vector[T]) setDenseCount(nvals int) {
	v.nvals = nvals
	v.maybePromoteFull()
}

// ensureDenseBuffers readies zeroed bitmap arrays for a kernel to write
// into, leaving the vector in bitmap format with no stored elements.
func (v *Vector[T]) ensureDenseBuffers() ([]T, []bool) {
	if v.dval == nil {
		v.dval = make([]T, v.n)
	}
	if v.dpresent == nil {
		v.dpresent = make([]bool, v.n)
	} else {
		clearBools(v.dpresent)
	}
	if v.format == Bitset {
		core.BitsetZero(v.dwords)
	}
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	v.format = Bitmap
	v.nvals = 0
	return v.dval, v.dpresent
}

// ensureBitsetBuffers readies zeroed word-packed buffers for a bitset-out
// kernel to write into, leaving the vector in bitset format with no stored
// elements. The kernels overwrite every word, so no clear is needed here
// beyond allocation.
func (v *Vector[T]) ensureBitsetBuffers() ([]T, []uint64) {
	if v.dval == nil {
		v.dval = make([]T, v.n)
	}
	v.ensureWords()
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	v.format = Bitset
	v.nvals = 0
	return v.dval, v.dwords
}

// recountDense refreshes nvals after the bitmap buffers were written raw,
// and re-settles the Bitmap/Dense split on the recounted pattern.
func (v *Vector[T]) recountDense() {
	c := 0
	for _, p := range v.dpresent {
		if p {
			c++
		}
	}
	v.nvals = c
	if c < v.n {
		v.format = Bitmap
	} else {
		v.maybePromoteFull()
	}
}

package graphblas

import (
	"fmt"
	"sort"

	"pushpull/internal/merge"
)

// Format names a Vector's current storage representation.
type Format int

const (
	// Sparse stores sorted (index, value) pairs — the natural frontier
	// representation for the push phase.
	Sparse Format = iota
	// Dense stores a value array plus a presence bitmap (the SPA layout of
	// Gilbert, Moler and Schreiber) — the natural representation for the
	// pull phase and for masks.
	Dense
)

// String returns "sparse" or "dense".
func (f Format) String() string {
	if f == Sparse {
		return "sparse"
	}
	return "dense"
}

// Vector is a GraphBLAS vector of length n over element type T. It keeps
// either a sparse or a dense representation and converts between them
// following the paper's Section 6.3 heuristic: the ratio nnz/n is compared
// to the descriptor's switch-point (default 0.01), and a conversion
// additionally requires nnz to be moving in the right direction since the
// last check (increasing to densify, decreasing to sparsify). Because MxV
// dispatches push vs pull on this format, the conversion heuristic *is*
// the direction-optimization heuristic.
//
// A Vector is not safe for concurrent mutation.
type Vector[T comparable] struct {
	n int

	format Format
	// Sparse representation: parallel slices, ind sorted ascending, unique.
	ind []uint32
	val []T
	// Dense representation: value + presence arrays of length n.
	dval     []T
	dpresent []bool
	nvals    int

	// Conversion hysteresis (Section 6.3): nnz at the previous convert
	// check, valid once primed.
	prevNNZ int
	primed  bool
}

// NewVector returns an empty sparse vector of length n.
func NewVector[T comparable](n int) *Vector[T] {
	if n < 0 {
		panic("graphblas: negative vector length")
	}
	return &Vector[T]{n: n, format: Sparse}
}

// Size returns the vector's length (the GraphBLAS "size").
func (v *Vector[T]) Size() int { return v.n }

// NVals returns the number of stored elements.
func (v *Vector[T]) NVals() int {
	if v.format == Sparse {
		return len(v.ind)
	}
	return v.nvals
}

// Format reports the current storage representation.
func (v *Vector[T]) Format() Format { return v.format }

// Clear removes all stored elements, keeping capacity where possible, and
// resets the vector to sparse format with cleared hysteresis.
func (v *Vector[T]) Clear() {
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	if v.dpresent != nil {
		clearBools(v.dpresent)
	}
	v.nvals = 0
	v.format = Sparse
	v.prevNNZ = 0
	v.primed = false
}

func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

// Build initializes the vector from (index, value) pairs, replacing any
// existing contents. Indices need not be sorted but must be in range;
// duplicates are folded with dup (last write wins when dup is nil).
func (v *Vector[T]) Build(indices []uint32, values []T, dup BinaryOp[T]) error {
	if len(indices) != len(values) {
		return fmt.Errorf("%w: %d indices, %d values", ErrInvalidValue, len(indices), len(values))
	}
	for _, i := range indices {
		if int(i) >= v.n {
			return fmt.Errorf("%w: index %d in vector of size %d", ErrIndexOutOfBounds, i, v.n)
		}
	}
	v.Clear()
	ind := append([]uint32(nil), indices...)
	val := append([]T(nil), values...)
	if v.n > 0 {
		merge.SortPairs(ind, val, uint32(v.n-1))
	}
	w := 0
	for i := range ind {
		if w > 0 && ind[w-1] == ind[i] {
			if dup != nil {
				val[w-1] = dup(val[w-1], val[i])
			} else {
				val[w-1] = val[i]
			}
			continue
		}
		ind[w] = ind[i]
		val[w] = val[i]
		w++
	}
	v.ind = ind[:w]
	v.val = val[:w]
	return nil
}

// SetElement stores value at index i, overwriting any existing element.
func (v *Vector[T]) SetElement(i int, value T) error {
	if i < 0 || i >= v.n {
		return fmt.Errorf("%w: index %d in vector of size %d", ErrIndexOutOfBounds, i, v.n)
	}
	if v.format == Dense {
		if !v.dpresent[i] {
			v.dpresent[i] = true
			v.nvals++
		}
		v.dval[i] = value
		return nil
	}
	pos := sort.Search(len(v.ind), func(k int) bool { return v.ind[k] >= uint32(i) })
	if pos < len(v.ind) && v.ind[pos] == uint32(i) {
		v.val[pos] = value
		return nil
	}
	v.ind = append(v.ind, 0)
	v.val = append(v.val, value)
	copy(v.ind[pos+1:], v.ind[pos:])
	copy(v.val[pos+1:], v.val[pos:])
	v.ind[pos] = uint32(i)
	v.val[pos] = value
	return nil
}

// RemoveElement deletes the element at index i if present.
func (v *Vector[T]) RemoveElement(i int) error {
	if i < 0 || i >= v.n {
		return fmt.Errorf("%w: index %d in vector of size %d", ErrIndexOutOfBounds, i, v.n)
	}
	if v.format == Dense {
		if v.dpresent[i] {
			v.dpresent[i] = false
			v.nvals--
		}
		return nil
	}
	pos := sort.Search(len(v.ind), func(k int) bool { return v.ind[k] >= uint32(i) })
	if pos < len(v.ind) && v.ind[pos] == uint32(i) {
		copy(v.ind[pos:], v.ind[pos+1:])
		copy(v.val[pos:], v.val[pos+1:])
		v.ind = v.ind[:len(v.ind)-1]
		v.val = v.val[:len(v.val)-1]
	}
	return nil
}

// ExtractElement returns the element at index i, or ErrNoValue if absent.
func (v *Vector[T]) ExtractElement(i int) (T, error) {
	var zero T
	if i < 0 || i >= v.n {
		return zero, fmt.Errorf("%w: index %d in vector of size %d", ErrIndexOutOfBounds, i, v.n)
	}
	if v.format == Dense {
		if v.dpresent[i] {
			return v.dval[i], nil
		}
		return zero, ErrNoValue
	}
	pos := sort.Search(len(v.ind), func(k int) bool { return v.ind[k] >= uint32(i) })
	if pos < len(v.ind) && v.ind[pos] == uint32(i) {
		return v.val[pos], nil
	}
	return zero, ErrNoValue
}

// Dup returns a deep copy.
func (v *Vector[T]) Dup() *Vector[T] {
	out := &Vector[T]{
		n:       v.n,
		format:  v.format,
		nvals:   v.nvals,
		prevNNZ: v.prevNNZ,
		primed:  v.primed,
	}
	out.ind = append([]uint32(nil), v.ind...)
	out.val = append([]T(nil), v.val...)
	if v.dval != nil {
		out.dval = append([]T(nil), v.dval...)
		out.dpresent = append([]bool(nil), v.dpresent...)
	}
	return out
}

// Iterate calls fn for every stored element in ascending index order,
// stopping early if fn returns false.
func (v *Vector[T]) Iterate(fn func(i int, value T) bool) {
	if v.format == Sparse {
		for k, idx := range v.ind {
			if !fn(int(idx), v.val[k]) {
				return
			}
		}
		return
	}
	for i := 0; i < v.n; i++ {
		if v.dpresent[i] {
			if !fn(i, v.dval[i]) {
				return
			}
		}
	}
}

// ToDense converts to the dense representation (sparse2dense). No-op if
// already dense.
func (v *Vector[T]) ToDense() {
	if v.format == Dense {
		return
	}
	if v.dval == nil {
		v.dval = make([]T, v.n)
		v.dpresent = make([]bool, v.n)
	} else {
		clearBools(v.dpresent)
	}
	for k, idx := range v.ind {
		v.dval[idx] = v.val[k]
		v.dpresent[idx] = true
	}
	v.nvals = len(v.ind)
	v.format = Dense
	v.ind = v.ind[:0]
	v.val = v.val[:0]
}

// ToSparse converts to the sparse representation (dense2sparse). No-op if
// already sparse.
func (v *Vector[T]) ToSparse() {
	if v.format == Sparse {
		return
	}
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	for i := 0; i < v.n; i++ {
		if v.dpresent[i] {
			v.ind = append(v.ind, uint32(i))
			v.val = append(v.val, v.dval[i])
		}
	}
	clearBools(v.dpresent)
	v.nvals = 0
	v.format = Sparse
}

// convertAuto applies the Section 6.3 format-switch heuristic: densify
// when nnz/n has grown past the switch-point, sparsify when it has shrunk
// below it. It returns the (possibly new) format.
func (v *Vector[T]) convertAuto(switchPoint float64) Format {
	if switchPoint <= 0 {
		switchPoint = DefaultSwitchPoint
	}
	nnz := v.NVals()
	increasing := !v.primed || nnz >= v.prevNNZ
	decreasing := !v.primed || nnz <= v.prevNNZ
	v.prevNNZ = nnz
	v.primed = true
	if v.n == 0 {
		return v.format
	}
	r := float64(nnz) / float64(v.n)
	switch v.format {
	case Sparse:
		if r > switchPoint && increasing {
			v.ToDense()
		}
	case Dense:
		if r < switchPoint && decreasing {
			v.ToSparse()
		}
	}
	return v.format
}

// sparseView returns the sparse arrays, converting if needed.
func (v *Vector[T]) sparseView() ([]uint32, []T) {
	v.ToSparse()
	return v.ind, v.val
}

// denseView returns the dense arrays, converting if needed.
func (v *Vector[T]) denseView() ([]T, []bool) {
	v.ToDense()
	return v.dval, v.dpresent
}

// DenseView densifies the vector if needed and exposes its raw value and
// presence arrays. The slices alias internal storage: callers may read
// them freely but must not grow them, and writes bypass NVals bookkeeping.
// Algorithm layers use this to probe bitmaps without per-element calls.
func (v *Vector[T]) DenseView() (values []T, present []bool) {
	return v.denseView()
}

// SparseView sparsifies the vector if needed and exposes its raw index and
// value slices (sorted ascending). The slices alias internal storage and
// must be treated as read-only.
func (v *Vector[T]) SparseView() (indices []uint32, values []T) {
	return v.sparseView()
}

// RecountDense refreshes NVals after a caller wrote the presence array
// exposed by DenseView directly. It is a no-op for sparse vectors.
func (v *Vector[T]) RecountDense() {
	if v.format == Dense {
		v.recountDense()
	}
}

// knownEmpty reports, conservatively, that the vector certainly stores no
// elements. Only the sparse representation answers true: a dense vector's
// nvals can be stale when callers write the presence array through
// DenseView without RecountDense, so its bitmap — not the counter — must
// stay the source of truth for kernel masks.
func (v *Vector[T]) knownEmpty() bool {
	return v.format == Sparse && len(v.ind) == 0
}

// maskBits returns a presence bitmap for use as a kernel mask. Dense
// vectors hand out their presence array zero-copy; sparse vectors
// materialize a scratch bitmap (O(n) once — callers that probe masks every
// iteration keep them dense).
func (v *Vector[T]) maskBits() []bool {
	if v.format == Dense {
		return v.dpresent
	}
	bits := make([]bool, v.n)
	for _, idx := range v.ind {
		bits[idx] = true
	}
	return bits
}

// setSparseResult installs kernel output (sorted unique indices) as the
// vector's contents, leaving it in sparse format.
func (v *Vector[T]) setSparseResult(ind []uint32, val []T) {
	v.ind = ind
	v.val = val
	if v.dpresent != nil {
		clearBools(v.dpresent)
	}
	v.nvals = 0
	v.format = Sparse
}

// setSparseCopy installs kernel output by copying it into the vector's own
// reusable index/value storage, leaving it in sparse format. Used when the
// source slices alias workspace scratch that the next kernel call will
// overwrite; steady-state cost is a copy into warm capacity, not an
// allocation.
func (v *Vector[T]) setSparseCopy(ind []uint32, val []T) {
	v.ind = append(v.ind[:0], ind...)
	v.val = append(v.val[:0], val...)
	if v.dpresent != nil {
		clearBools(v.dpresent)
	}
	v.nvals = 0
	v.format = Sparse
}

// setDenseCount records the stored-element count after a kernel reported
// how many outputs it wrote, replacing the O(n) presence rescan the layer
// used to do.
func (v *Vector[T]) setDenseCount(nvals int) {
	v.nvals = nvals
}

// ensureDenseBuffers readies zeroed dense arrays for a kernel to write
// into, leaving the vector in dense format with no stored elements.
func (v *Vector[T]) ensureDenseBuffers() ([]T, []bool) {
	if v.dval == nil {
		v.dval = make([]T, v.n)
		v.dpresent = make([]bool, v.n)
	} else {
		clearBools(v.dpresent)
	}
	v.ind = v.ind[:0]
	v.val = v.val[:0]
	v.format = Dense
	v.nvals = 0
	return v.dval, v.dpresent
}

// recountDense refreshes nvals after a kernel wrote the dense buffers.
func (v *Vector[T]) recountDense() {
	c := 0
	for _, p := range v.dpresent {
		if p {
			c++
		}
	}
	v.nvals = c
}

package graphblas

import (
	"fmt"
	"math/bits"

	"pushpull/internal/core"
)

// This file is the single execute path behind every OpSpec operation. Each
// op runs the same stages:
//
//  1. conform dimensions (operands, output, mask) — once, up front;
//  2. resolve the workspace (the descriptor's pinned one, or a pooled one
//     for the call) and lower the mask to a kernel bitmap through it, with
//     the degenerate-mask fast paths MxV uses (a known-empty plain mask
//     yields an empty result without touching operands; a known-empty
//     complemented mask runs unmasked);
//  3. pick a format-aware kernel from the operand storage formats — the
//     format engine's lattice decides the *output* format too, so bitmap
//     and dense operands produce bitmap/dense outputs (dense∘dense eWise
//     loops run over the value arrays directly) and only all-sparse
//     operand sets produce sparse lists;
//  4. bounce through workspace scratch when the output aliases an operand
//     or the mask's bitmap, exactly like MxV's aliased matvec;
//  5. merge through the shared accumulate machinery (mergeInto, the
//     format-preserving merge mergeAccum is also built on) when an
//     accumulator is set;
//  6. record what ran — operation, output storage kind — in the
//     descriptor's Plan sink for tracing.

// exec is the resolved per-invocation state of the pipeline: workspace,
// mask view, and the spec's output/accumulator.
type exec[T comparable] struct {
	w          *Vector[T]
	accum      BinaryOp[T]
	desc       *Descriptor
	ws         *Workspace
	pooled     bool
	rows, cols int
	useMask    bool
	mv         core.MaskView
}

// begin resolves the mask and the pinned workspace, if any. A pooled
// workspace is acquired lazily (see workspace): an unmasked, non-accum,
// non-aliased call — or one masked by a bitmap/dense vector, whose bits
// are zero-copy — never pays the pool round-trip at all.
func (s OpSpec[T]) begin(rows, cols int) exec[T] {
	e := exec[T]{w: s.w, accum: s.accum, desc: s.desc, rows: rows, cols: cols}
	e.ws = s.desc.workspace()
	if s.mask != nil {
		e.useMask = true
		e.mv.KnownEmpty = s.mask.maskKnownEmpty()
		if s.desc != nil {
			e.mv.Scmp = s.desc.StructuralComplement
			e.mv.List = s.desc.MaskAllowList
		}
		// Degenerate masks, resolved once for every op: empty ¬m allows
		// everything (drop the mask), empty m allows nothing (the caller
		// checks emptyResult and skips the kernel, so no bits are needed).
		if e.mv.KnownEmpty && e.mv.Scmp {
			e.useMask = false
		}
		if e.useMask && !e.emptyResult() {
			// Only a sparse mask materializes through the workspace (into
			// its packed word buffer); bitset masks hand out their words and
			// bitmap/dense masks their presence array, both zero-copy.
			ws := e.ws
			if ws == nil {
				if _, sparseMask := s.mask.maskSparseIndices(); sparseMask {
					ws = e.workspace()
				}
			}
			e.mv.Words, e.mv.Bits = s.mask.maskLowerWS(ws)
		}
	}
	return e
}

// workspace returns the call's scratch workspace, acquiring a pooled one
// on first use when the descriptor pins none.
func (e *exec[T]) workspace() *Workspace {
	if e.ws == nil {
		e.ws = AcquireWorkspace(e.rows, e.cols)
		e.pooled = true
	}
	return e.ws
}

// emptyResult reports that the effective mask allows no output at all.
func (e *exec[T]) emptyResult() bool {
	return e.useMask && e.mv.KnownEmpty && !e.mv.Scmp
}

// aliasesMask reports whether v's presence storage is the exact array the
// mask was lowered to (zero-copy masks from bitmap/dense/bitset vectors).
func (e *exec[T]) aliasesMask(v *Vector[T]) bool {
	return e.useMask && (sharesBits(v, e.mv.Bits) || sharesWords(v, e.mv.Words))
}

// end releases an auto-pooled workspace.
func (e *exec[T]) end() {
	if e.pooled {
		e.ws.Release()
	}
}

// target returns the vector the kernel writes into: w directly, or the
// workspace scratch vector when the result must bounce (accumulate, or w
// aliasing an operand or the mask bitmap).
func (e *exec[T]) target(aliased bool) *Vector[T] {
	if e.accum != nil || aliased {
		return scratchVectorFor[T](e.workspace(), e.w.Size())
	}
	return e.w
}

// install lands the kernel result in w: nothing to do when the kernel wrote
// w directly, a constant-time storage swap for an alias bounce, or the
// format-preserving accumulate merge (which only needs workspace scratch
// for a sparse destination).
func (e *exec[T]) install(target *Vector[T]) {
	if target == e.w {
		return
	}
	if e.accum != nil {
		var ws *Workspace
		if e.w.format == Sparse {
			ws = e.workspace()
		}
		mergeInto(ws, e.w, target, e.accum, false, core.MaskView{})
		return
	}
	swapStorage(e.w, target)
}

// record writes the operation trace into the descriptor's Plan sink.
func recordPlan(desc *Descriptor, op string, nnz, n int, out core.VecKind) {
	if desc == nil || desc.Plan == nil {
		return
	}
	*desc.Plan = core.Plan{Op: op, OutKind: out, Rule: core.RuleFormat, FrontierNNZ: nnz, N: n}
}

// kindOf maps a storage format to the kernel view kind recorded in plans.
func kindOf(f Format) core.VecKind {
	switch f {
	case Sparse:
		return core.KindSparse
	case Bitmap:
		return core.KindBitmap
	case Bitset:
		return core.KindBitset
	default:
		return core.KindDense
	}
}

// conformMask checks the mask's length against the output dimension.
func (s OpSpec[T]) conformMask(outSize int) error {
	if s.mask != nil && s.mask.Size() != outSize {
		return fmt.Errorf("%w: mask size %d, output is %d", ErrDimensionMismatch, s.mask.Size(), outSize)
	}
	return nil
}

// setEmptySparse clears v to an empty sparse result (the known-empty-mask
// product) without surrendering its buffers.
func setEmptySparse[T comparable](v *Vector[T]) {
	v.setSparseResult(v.ind[:0], v.val[:0])
}

// ---------------------------------------------------------------------------
// eWise

func (s OpSpec[T]) ewise(union bool, op BinaryOp[T], u, v *Vector[T]) (err error) {
	if err := conformEWise(s.w, u, v); err != nil {
		return err
	}
	if err := s.conformMask(s.w.Size()); err != nil {
		return err
	}
	if err := s.ctxErr(); err != nil {
		return err
	}
	opName := core.OpEWiseMult
	if union {
		opName = core.OpEWiseAdd
	}
	e := s.begin(s.w.Size(), s.w.Size())
	defer e.end()
	defer e.captureFault(&err)

	if e.emptyResult() {
		if e.accum == nil {
			setEmptySparse(s.w)
		}
		recordPlan(s.desc, opName, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
		return nil
	}

	// Output format follows the operand lattice: an intersection is at most
	// as dense as its sparser operand, a union at least as dense as its
	// denser one; when a bitset operand is involved (and no sparse one),
	// the output lands word-packed and the pattern is computed 64 positions
	// per word op.
	denseish := u.format != Sparse && v.format != Sparse
	bitsetOut := denseish && (u.format == Bitset || v.format == Bitset)
	bitmapOut := denseish && !bitsetOut
	if union && !bitsetOut {
		bitmapOut = u.format != Sparse || v.format != Sparse
	}
	uv, vv := u.kernelView(), v.kernelView()
	aliased := s.w == u || s.w == v || e.aliasesMask(s.w)
	target := e.target(aliased)

	if bitsetOut {
		wVal, wWords := target.ensureBitsetBuffers()
		var nv int
		if bop, ok := any(op).(BinaryOp[bool]); ok {
			// Boolean operands: truth-table the operator once and run the
			// whole eWise — pattern and values — as 64-way word arithmetic.
			ub, vb, tb := any(u).(*Vector[bool]), any(v).(*Vector[bool]), any(target).(*Vector[bool])
			nv = core.BoolEWiseBitset(union, tb.dval, wWords, ub.kernelView(), vb.kernelView(), e.useMask, e.mv, bop)
		} else if union {
			nv = core.EWiseAddBitsetOut(wVal, wWords, uv, vv, e.useMask, e.mv, op)
		} else {
			nv = core.EWiseMultBitsetOut(wVal, wWords, uv, vv, e.useMask, e.mv, op)
		}
		target.setDenseCount(nv)
	} else if bitmapOut {
		wVal, wPresent := target.ensureDenseBuffers()
		var nv int
		if union {
			nv = core.EWiseAddBitmap(wVal, wPresent, uv, vv, e.useMask, e.mv, op)
		} else {
			nv = core.EWiseMultBitmap(wVal, wPresent, uv, vv, e.useMask, e.mv, op)
		}
		target.setDenseCount(nv)
	} else {
		ind, val := target.ind[:0], target.val[:0]
		if union {
			ind, val = core.EWiseAddSparse(ind, val, uv, vv, e.useMask, e.mv, op)
		} else {
			ind, val = core.EWiseMultSparse(ind, val, uv, vv, e.useMask, e.mv, op)
		}
		target.setSparseResult(ind, val)
	}
	e.install(target)
	recordPlan(s.desc, opName, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
	return nil
}

// ---------------------------------------------------------------------------
// apply / select

func (s OpSpec[T]) conformUnary(u *Vector[T]) error {
	if s.w == nil || u == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if s.w.Size() != u.Size() {
		return fmt.Errorf("%w: sizes %d, %d", ErrDimensionMismatch, s.w.Size(), u.Size())
	}
	return s.conformMask(s.w.Size())
}

// applyIndexed runs apply. plain, when non-nil, is the index-free operator
// the indexed f was wrapped around (OpSpec.Apply): for Boolean bitset
// operands its two-entry truth table lets the whole map run as word
// arithmetic instead of one call per element.
func (s OpSpec[T]) applyIndexed(plain func(T) T, f func(i int, x T) T, u *Vector[T]) (err error) {
	if err := s.conformUnary(u); err != nil {
		return err
	}
	if err := s.ctxErr(); err != nil {
		return err
	}
	// In-place fast path: same pattern, mapped values — no workspace, no
	// format change, no copies. A panicking user operator still surfaces
	// as ErrKernelPanic (there is no workspace to taint here).
	if s.w == u && s.mask == nil && s.accum == nil {
		defer captureFault(nil, &err)
		switch u.format {
		case Sparse:
			for k := range u.val {
				u.val[k] = f(int(u.ind[k]), u.val[k])
			}
		case Bitset:
			for wi, w := range u.dwords {
				base := wi << 6
				for ; w != 0; w &= w - 1 {
					i := base + bits.TrailingZeros64(w)
					u.dval[i] = f(i, u.dval[i])
				}
			}
		default:
			for i := 0; i < u.n; i++ {
				if u.dpresent[i] {
					u.dval[i] = f(i, u.dval[i])
				}
			}
		}
		recordPlan(s.desc, core.OpApply, u.NVals(), u.n, kindOf(u.format))
		return nil
	}
	e := s.begin(s.w.Size(), s.w.Size())
	defer e.end()
	defer e.captureFault(&err)

	if e.emptyResult() {
		if e.accum == nil {
			setEmptySparse(s.w)
		}
		recordPlan(s.desc, core.OpApply, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
		return nil
	}
	uv := u.kernelView()
	aliased := s.w == u || e.aliasesMask(s.w)
	target := e.target(aliased)
	switch {
	case u.format == Bitset:
		wVal, wWords := target.ensureBitsetBuffers()
		if bf, ok := any(plain).(func(bool) bool); ok && plain != nil {
			ub, tb := any(u).(*Vector[bool]), any(target).(*Vector[bool])
			target.setDenseCount(core.BoolApplyBitset(tb.dval, wWords, ub.kernelView(), e.useMask, e.mv, bf))
		} else {
			target.setDenseCount(core.ApplyBitsetOut(wVal, wWords, uv, e.useMask, e.mv, f))
		}
	case u.format != Sparse:
		wVal, wPresent := target.ensureDenseBuffers()
		target.setDenseCount(core.ApplyBitmap(wVal, wPresent, uv, e.useMask, e.mv, f))
	default:
		ind, val := core.ApplySparse(target.ind[:0], target.val[:0], uv, e.useMask, e.mv, f)
		target.setSparseResult(ind, val)
	}
	e.install(target)
	recordPlan(s.desc, core.OpApply, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
	return nil
}

func (s OpSpec[T]) selectOp(pred func(i int, x T) bool, u *Vector[T]) (err error) {
	if err := s.conformUnary(u); err != nil {
		return err
	}
	if err := s.ctxErr(); err != nil {
		return err
	}
	e := s.begin(s.w.Size(), s.w.Size())
	defer e.end()
	defer e.captureFault(&err)

	if e.emptyResult() {
		if e.accum == nil {
			setEmptySparse(s.w)
		}
		recordPlan(s.desc, core.OpSelect, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
		return nil
	}
	uv := u.kernelView()
	aliased := s.w == u || e.aliasesMask(s.w)
	target := e.target(aliased)
	switch {
	case u.format == Bitset:
		wVal, wWords := target.ensureBitsetBuffers()
		target.setDenseCount(core.SelectBitsetOut(wVal, wWords, uv, e.useMask, e.mv, pred))
	case u.format != Sparse:
		wVal, wPresent := target.ensureDenseBuffers()
		target.setDenseCount(core.SelectBitmap(wVal, wPresent, uv, e.useMask, e.mv, pred))
	default:
		ind, val := core.SelectSparse(target.ind[:0], target.val[:0], uv, e.useMask, e.mv, pred)
		target.setSparseResult(ind, val)
	}
	e.install(target)
	recordPlan(s.desc, core.OpSelect, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
	return nil
}

// ---------------------------------------------------------------------------
// assign

func (s OpSpec[T]) assignVector(u *Vector[T]) (err error) {
	if err := s.conformUnary(u); err != nil {
		return err
	}
	if err := s.ctxErr(); err != nil {
		return err
	}
	if s.w == u && s.accum == nil {
		recordPlan(s.desc, core.OpAssign, u.NVals(), u.n, kindOf(u.format))
		return nil
	}
	if s.mask == nil {
		// Unmasked merge: a workspace is only needed for the sparse-w
		// accumulate scratch, so bitmap/dense destinations merge in place
		// with no pool round-trip at all. Release is deferred so a
		// panicking accumulator (captured below, taint first) discards the
		// pooled workspace instead of re-pooling it.
		ws := s.desc.workspace()
		if ws == nil && s.w.format == Sparse {
			ws = AcquireWorkspace(s.w.Size(), s.w.Size())
			defer ws.Release()
		}
		defer captureFault(ws, &err)
		mergeInto(ws, s.w, u, s.accum, false, core.MaskView{})
		recordPlan(s.desc, core.OpAssign, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
		return nil
	}
	e := s.begin(s.w.Size(), s.w.Size())
	defer e.end()
	defer e.captureFault(&err)
	if e.emptyResult() {
		recordPlan(s.desc, core.OpAssign, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
		return nil
	}
	var ws *Workspace
	if s.w.format == Sparse {
		ws = e.workspace()
	}
	mergeInto(ws, s.w, u, s.accum, e.useMask, e.mv)
	recordPlan(s.desc, core.OpAssign, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
	return nil
}

func (s OpSpec[T]) assignScalar(value T) (err error) {
	w := s.w
	if w == nil {
		return fmt.Errorf("%w: nil output", ErrInvalidValue)
	}
	if err := s.conformMask(w.Size()); err != nil {
		return err
	}
	// Only the user accumulator can panic here, and it runs after any mask
	// lowering has fully settled the workspace's scrub bookkeeping — so the
	// workspace stays poolable and the guard taints nothing.
	defer captureFault(nil, &err)
	accum := s.accum
	scmp := s.desc != nil && s.desc.StructuralComplement
	// A bitset destination assigns through its packed words in place — it
	// must not demote to bitmap just to take a scalar (ParentBFS assigns
	// into its bitset visited set every iteration).
	var wVal []T
	var wPresent []bool
	var wWords []uint64
	if w.format == Bitset {
		wVal, wWords = w.dval, w.dwords
	} else {
		wVal, wPresent = w.denseView()
	}

	setAt := func(i int) {
		stored := false
		if wWords != nil {
			stored = core.BitsetGet(wWords, i)
		} else {
			stored = wPresent[i]
		}
		if stored {
			if accum != nil {
				wVal[i] = accum(wVal[i], value)
			} else {
				wVal[i] = value
			}
			return
		}
		if wWords != nil {
			core.BitsetSet(wWords, i)
		} else {
			wPresent[i] = true
		}
		w.nvals++
		wVal[i] = value
	}

	if s.mask == nil {
		for i := 0; i < w.Size(); i++ {
			setAt(i)
		}
		w.maybePromoteFull()
		recordPlan(s.desc, core.OpAssignScalar, w.NVals(), w.Size(), kindOf(w.format))
		return nil
	}
	if ind, ok := s.mask.maskSparseIndices(); ok && !scmp {
		// Fast path: walk the sparse mask's nonzero list directly.
		for _, idx := range ind {
			setAt(int(idx))
		}
		w.maybePromoteFull()
		recordPlan(s.desc, core.OpAssignScalar, w.NVals(), w.Size(), kindOf(w.format))
		return nil
	}
	// Remaining cases: a complemented sparse mask (materialized through the
	// workspace's reusable bitmap) or a bitmap/dense mask (zero-copy bits,
	// no workspace involved).
	if s.mask.maskKnownEmpty() {
		// Empty sparse mask: ¬m allows everything, m allows nothing.
		if scmp {
			for i := 0; i < w.Size(); i++ {
				setAt(i)
			}
			w.maybePromoteFull()
		}
		recordPlan(s.desc, core.OpAssignScalar, w.NVals(), w.Size(), kindOf(w.format))
		return nil
	}
	ws := s.desc.workspace()
	if ws == nil {
		if _, sparseMask := s.mask.maskSparseIndices(); sparseMask {
			ws = AcquireWorkspace(w.Size(), w.Size())
			defer ws.Release()
		}
	}
	mWords, mBits := s.mask.maskLowerWS(ws)
	mv := core.MaskView{Words: mWords, Bits: mBits, Scmp: scmp}
	for i := 0; i < w.Size(); i++ {
		if mv.Allows(i) {
			setAt(i)
		}
	}
	w.maybePromoteFull()
	recordPlan(s.desc, core.OpAssignScalar, w.NVals(), w.Size(), kindOf(w.format))
	return nil
}

// mergeInto folds src into w where the mask allows: w(i) = accum(w(i), x)
// where both are present (plain overwrite when accum is nil), copy where
// only src is. The merge is format-preserving — a bitmap or dense w updates
// in place, a sparse w merges the two sorted streams into the workspace's
// accumulate scratch and swaps storage, so a sparse destination never
// densifies. mergeAccum (the MxV accumulate) is this with no mask.
func mergeInto[T comparable](ws *Workspace, w, src *Vector[T], accum BinaryOp[T], useMask bool, mv core.MaskView) {
	if src.NVals() == 0 {
		return
	}
	if w.format == Bitset {
		// Word-packed destination: flip single bits in place, no bitmap
		// round-trip (the BFS visited-set update lands here).
		wVal, words := w.dval, w.dwords
		src.Iterate(func(i int, x T) bool {
			if useMask && !mv.Allows(i) {
				return true
			}
			if core.BitsetGet(words, i) {
				if accum != nil {
					wVal[i] = accum(wVal[i], x)
				} else {
					wVal[i] = x
				}
			} else {
				core.BitsetSet(words, i)
				wVal[i] = x
				w.nvals++
			}
			return true
		})
		return
	}
	if w.format != Sparse {
		wVal, wPresent := w.dval, w.dpresent
		src.Iterate(func(i int, x T) bool {
			if useMask && !mv.Allows(i) {
				return true
			}
			if wPresent[i] {
				if accum != nil {
					wVal[i] = accum(wVal[i], x)
				} else {
					wVal[i] = x
				}
			} else {
				w.format = Bitmap // pattern grew: settle below
				wVal[i] = x
				wPresent[i] = true
				w.nvals++
			}
			return true
		})
		w.maybePromoteFull()
		return
	}
	// Sparse w: two-pointer merge of w's sorted list with src's ascending
	// iteration, built in the accumulate scratch vector and swapped in.
	out := accumScratchFor[T](ws, w.n)
	oInd := out.ind[:0]
	oVal := out.val[:0]
	wi := 0
	src.Iterate(func(i int, x T) bool {
		if useMask && !mv.Allows(i) {
			return true
		}
		for wi < len(w.ind) && int(w.ind[wi]) < i {
			oInd = append(oInd, w.ind[wi])
			oVal = append(oVal, w.val[wi])
			wi++
		}
		if wi < len(w.ind) && int(w.ind[wi]) == i {
			if accum != nil {
				oVal = append(oVal, accum(w.val[wi], x))
			} else {
				oVal = append(oVal, x)
			}
			oInd = append(oInd, w.ind[wi])
			wi++
		} else {
			oInd = append(oInd, uint32(i))
			oVal = append(oVal, x)
		}
		return true
	})
	oInd = append(oInd, w.ind[wi:]...)
	oVal = append(oVal, w.val[wi:]...)
	out.ind, out.val = oInd, oVal
	out.format = Sparse
	out.nvals = 0
	if out.dpresent != nil {
		clearBools(out.dpresent)
	}
	swapStorage(w, out)
}

// ---------------------------------------------------------------------------
// extract

func (s OpSpec[T]) extract(u *Vector[T], indices []uint32) (err error) {
	if s.w == nil || u == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if s.w.Size() != len(indices) {
		return fmt.Errorf("%w: extract output size %d, %d indices", ErrDimensionMismatch, s.w.Size(), len(indices))
	}
	for _, idx := range indices {
		if int(idx) >= u.Size() {
			return fmt.Errorf("%w: extract index %d in vector of size %d", ErrIndexOutOfBounds, idx, u.Size())
		}
	}
	if err := s.conformMask(s.w.Size()); err != nil {
		return err
	}
	if err := s.ctxErr(); err != nil {
		return err
	}
	e := s.begin(s.w.Size(), u.Size())
	defer e.end()
	defer e.captureFault(&err)

	if e.emptyResult() {
		if e.accum == nil {
			setEmptySparse(s.w)
		}
		recordPlan(s.desc, core.OpExtract, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
		return nil
	}
	uv := u.kernelView()
	aliased := s.w == u || e.aliasesMask(s.w)
	target := e.target(aliased)
	if u.format != Sparse {
		wVal, wPresent := target.ensureDenseBuffers()
		target.setDenseCount(core.ExtractBitmap(wVal, wPresent, uv, indices, e.useMask, e.mv))
	} else {
		ind, val := core.ExtractSparse(target.ind[:0], target.val[:0], uv, indices, e.useMask, e.mv)
		target.setSparseResult(ind, val)
	}
	e.install(target)
	recordPlan(s.desc, core.OpExtract, s.w.NVals(), s.w.Size(), kindOf(s.w.format))
	return nil
}

package graphblas

import (
	"fmt"

	"pushpull/internal/core"
)

// This file holds the positional operation signatures, kept as thin
// deprecated wrappers over the unified OpSpec pipeline (opspec.go,
// execute.go) so existing call sites compile unchanged, plus the matrix
// and reduction operations that do not take the vector pipeline.

// EWiseMult is the positional form of OpSpec.EWiseMult (unmasked,
// non-accumulating).
//
// Deprecated: use Into(w).EWiseMult(op, u, v), which also accepts a mask,
// accumulator and descriptor.
func EWiseMult[T comparable](w *Vector[T], op BinaryOp[T], u, v *Vector[T]) error {
	return Into(w).EWiseMult(op, u, v)
}

// EWiseAdd is the positional form of OpSpec.EWiseAdd (unmasked,
// non-accumulating).
//
// Deprecated: use Into(w).EWiseAdd(op, u, v), which also accepts a mask,
// accumulator and descriptor.
func EWiseAdd[T comparable](w *Vector[T], op BinaryOp[T], u, v *Vector[T]) error {
	return Into(w).EWiseAdd(op, u, v)
}

// conformEWise checks the three-operand dimension agreement of the eWise
// ops.
func conformEWise[T comparable](w, u, v *Vector[T]) error {
	if w == nil || u == nil || v == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if u.Size() != v.Size() || w.Size() != u.Size() {
		return fmt.Errorf("%w: eWise sizes %d, %d, %d", ErrDimensionMismatch, w.Size(), u.Size(), v.Size())
	}
	return nil
}

// Apply is the positional form of OpSpec.Apply. w may alias u.
//
// Deprecated: use Into(w).Apply(f, u), which also accepts a mask,
// accumulator and descriptor.
func Apply[T comparable](w *Vector[T], f func(T) T, u *Vector[T]) error {
	return Into(w).Apply(f, u)
}

// ApplyIndexed is the positional form of OpSpec.ApplyIndexed. w may alias
// u.
//
// Deprecated: use Into(w).ApplyIndexed(f, u), which also accepts a mask,
// accumulator and descriptor.
func ApplyIndexed[T comparable](w *Vector[T], f func(i int, x T) T, u *Vector[T]) error {
	return Into(w).ApplyIndexed(f, u)
}

// AssignVector is the positional form of OpSpec.AssignVector: w(i) = u(i)
// wherever u has an element, leaving the rest of w intact.
//
// Deprecated: use Into(w).AssignVector(u), which also accepts a mask,
// accumulator and descriptor.
func AssignVector[T comparable](w *Vector[T], u *Vector[T]) error {
	return Into(w).AssignVector(u)
}

// Select is the positional form of OpSpec.Select. w may alias u.
//
// Deprecated: use Into(w).Select(pred, u), which also accepts a mask,
// accumulator and descriptor.
func Select[T comparable](w *Vector[T], pred func(i int, value T) bool, u *Vector[T]) error {
	return Into(w).Select(pred, u)
}

// Extract is the positional form of OpSpec.Extract.
//
// Deprecated: use Into(w).Extract(u, indices), which also accepts a mask,
// accumulator and descriptor.
func Extract[T comparable](w *Vector[T], u *Vector[T], indices []uint32) error {
	return Into(w).Extract(u, indices)
}

// AssignScalar is the positional form of OpSpec.AssignScalar, the masked
// scalar assign of Algorithm 1 Line 7 (GrB_assign with a scalar): for
// every index the effective mask allows, set w(i) = value; all other
// positions keep their current contents (replace=false semantics). BFS
// uses it as v⟨f⟩ = depth.
//
// Deprecated: use Into(w).Mask(mask).With(desc).AssignScalar(value), which
// also accepts an accumulator and a nil mask (assign everywhere).
func AssignScalar[T, M comparable](w *Vector[T], mask *Vector[M], value T, desc *Descriptor) error {
	if w == nil || mask == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	return Into(w).Mask(mask).With(desc).AssignScalar(value)
}

// Transpose returns Aᵀ as a new matrix. Because Matrix already stores both
// orientations this is O(1): the views swap.
func Transpose[T comparable](a *Matrix[T]) *Matrix[T] {
	if a.Symmetric() {
		return a
	}
	return &Matrix[T]{csr: a.csc, csc: a.csr}
}

// Reduce folds u's stored values with the monoid (GrB_reduce to scalar).
func Reduce[T comparable](m Monoid[T], u *Vector[T]) T {
	acc := m.Identity
	u.Iterate(func(_ int, x T) bool {
		acc = m.Op(acc, x)
		return m.Terminal == nil || acc != *m.Terminal
	})
	return acc
}

// MxM computes the masked matrix-matrix product C⟨M⟩ = A ⊕.⊗ B with the
// output pattern restricted to the mask matrix's pattern — the paper's
// generalization of output-sparsity masking beyond matvec (Section 5.6),
// as used by triangle counting. The unmasked product is deliberately not
// offered: computing C = A·B without an output mask is exactly the
// asymptotic blow-up masking exists to avoid.
func MxM[T comparable](maskPattern *Matrix[T], s Semiring[T], a, b *Matrix[T], desc *Descriptor) (*Matrix[T], error) {
	if maskPattern == nil || a == nil || b == nil {
		return nil, fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if a.NCols() != b.NRows() {
		return nil, fmt.Errorf("%w: %d×%d times %d×%d", ErrDimensionMismatch, a.NRows(), a.NCols(), b.NRows(), b.NCols())
	}
	if maskPattern.NRows() != a.NRows() || maskPattern.NCols() != b.NCols() {
		return nil, fmt.Errorf("%w: mask %d×%d for %d×%d product", ErrDimensionMismatch,
			maskPattern.NRows(), maskPattern.NCols(), a.NRows(), b.NCols())
	}
	mc := maskPattern.CSR()
	prod := core.MxMMasked(a.CSR(), b.CSR(), mc.Ptr, mc.Ind, toCoreSR(s), desc.coreOpts(desc.workspace()))
	return NewMatrixFromCSR(prod), nil
}

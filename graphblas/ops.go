package graphblas

import (
	"fmt"

	"pushpull/internal/core"
)

// EWiseMult computes w = u .⊗ v on the *intersection* of the operand
// patterns (GrB_eWiseMult). The output is written in sparse form.
func EWiseMult[T comparable](w *Vector[T], op BinaryOp[T], u, v *Vector[T]) error {
	if err := conformEWise(w, u, v); err != nil {
		return err
	}
	uInd, uVal := u.sparseView()
	vInd, vVal := v.sparseView()
	var ind []uint32
	var val []T
	i, j := 0, 0
	for i < len(uInd) && j < len(vInd) {
		switch {
		case uInd[i] < vInd[j]:
			i++
		case uInd[i] > vInd[j]:
			j++
		default:
			ind = append(ind, uInd[i])
			val = append(val, op(uVal[i], vVal[j]))
			i++
			j++
		}
	}
	w.setSparseResult(ind, val)
	return nil
}

// EWiseAdd computes w = u ⊕ v on the *union* of the operand patterns
// (GrB_eWiseAdd): positions present in only one operand pass through.
func EWiseAdd[T comparable](w *Vector[T], op BinaryOp[T], u, v *Vector[T]) error {
	if err := conformEWise(w, u, v); err != nil {
		return err
	}
	uInd, uVal := u.sparseView()
	vInd, vVal := v.sparseView()
	var ind []uint32
	var val []T
	i, j := 0, 0
	for i < len(uInd) || j < len(vInd) {
		switch {
		case j >= len(vInd) || (i < len(uInd) && uInd[i] < vInd[j]):
			ind = append(ind, uInd[i])
			val = append(val, uVal[i])
			i++
		case i >= len(uInd) || vInd[j] < uInd[i]:
			ind = append(ind, vInd[j])
			val = append(val, vVal[j])
			j++
		default:
			ind = append(ind, uInd[i])
			val = append(val, op(uVal[i], vVal[j]))
			i++
			j++
		}
	}
	w.setSparseResult(ind, val)
	return nil
}

func conformEWise[T comparable](w, u, v *Vector[T]) error {
	if w == nil || u == nil || v == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if u.Size() != v.Size() || w.Size() != u.Size() {
		return fmt.Errorf("%w: eWise sizes %d, %d, %d", ErrDimensionMismatch, w.Size(), u.Size(), v.Size())
	}
	return nil
}

// Apply computes w = f(u) elementwise over u's pattern (GrB_apply). w may
// alias u.
func Apply[T comparable](w *Vector[T], f func(T) T, u *Vector[T]) error {
	if w == nil || u == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if w.Size() != u.Size() {
		return fmt.Errorf("%w: apply sizes %d, %d", ErrDimensionMismatch, w.Size(), u.Size())
	}
	if w == u {
		if u.format == Sparse {
			for i := range u.val {
				u.val[i] = f(u.val[i])
			}
			return nil
		}
		for i := 0; i < u.n; i++ {
			if u.dpresent[i] {
				u.dval[i] = f(u.dval[i])
			}
		}
		return nil
	}
	uInd, uVal := u.sparseView()
	ind := append([]uint32(nil), uInd...)
	val := make([]T, len(uVal))
	for i, x := range uVal {
		val[i] = f(x)
	}
	w.setSparseResult(ind, val)
	return nil
}

// ApplyIndexed computes w = f(i, u(i)) elementwise over u's pattern, the
// index-aware variant of Apply (GrB_apply with an index-unary operator).
// Parent-tracking BFS uses it to stamp each frontier vertex with its own
// id. w may alias u.
func ApplyIndexed[T comparable](w *Vector[T], f func(i int, x T) T, u *Vector[T]) error {
	if w == nil || u == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if w.Size() != u.Size() {
		return fmt.Errorf("%w: apply sizes %d, %d", ErrDimensionMismatch, w.Size(), u.Size())
	}
	if w == u {
		if u.format == Sparse {
			for k := range u.val {
				u.val[k] = f(int(u.ind[k]), u.val[k])
			}
			return nil
		}
		for i := 0; i < u.n; i++ {
			if u.dpresent[i] {
				u.dval[i] = f(i, u.dval[i])
			}
		}
		return nil
	}
	uInd, uVal := u.sparseView()
	ind := append([]uint32(nil), uInd...)
	val := make([]T, len(uVal))
	for k, x := range uVal {
		val[k] = f(int(ind[k]), x)
	}
	w.setSparseResult(ind, val)
	return nil
}

// AssignVector merges u's stored elements into w: w(i) = u(i) wherever u
// has an element, leaving the rest of w intact (GrB_assign with a vector
// and replace=false).
func AssignVector[T comparable](w *Vector[T], u *Vector[T]) error {
	if w == nil || u == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if w.Size() != u.Size() {
		return fmt.Errorf("%w: assign sizes %d, %d", ErrDimensionMismatch, w.Size(), u.Size())
	}
	if w == u {
		return nil
	}
	wVal, wPresent := w.denseView()
	u.Iterate(func(i int, x T) bool {
		if !wPresent[i] {
			wPresent[i] = true
			w.nvals++
		}
		wVal[i] = x
		return true
	})
	w.maybePromoteFull()
	return nil
}

// Select keeps the elements of u for which pred(i, value) is true
// (GxB_select). w may alias u.
func Select[T comparable](w *Vector[T], pred func(i int, value T) bool, u *Vector[T]) error {
	if w == nil || u == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if w.Size() != u.Size() {
		return fmt.Errorf("%w: select sizes %d, %d", ErrDimensionMismatch, w.Size(), u.Size())
	}
	uInd, uVal := u.sparseView()
	var ind []uint32
	var val []T
	for k, idx := range uInd {
		if pred(int(idx), uVal[k]) {
			ind = append(ind, idx)
			val = append(val, uVal[k])
		}
	}
	w.setSparseResult(ind, val)
	return nil
}

// Extract copies the elements of u at the given indices into w, compacted:
// w(k) = u(indices[k]) where present (GrB_extract with an index list).
// Indices must be in range; duplicates are allowed.
func Extract[T comparable](w *Vector[T], u *Vector[T], indices []uint32) error {
	if w == nil || u == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if w.Size() != len(indices) {
		return fmt.Errorf("%w: extract output size %d, %d indices", ErrDimensionMismatch, w.Size(), len(indices))
	}
	for _, idx := range indices {
		if int(idx) >= u.Size() {
			return fmt.Errorf("%w: extract index %d in vector of size %d", ErrIndexOutOfBounds, idx, u.Size())
		}
	}
	uVal, uPresent := u.denseView()
	var ind []uint32
	var val []T
	for k, idx := range indices {
		if uPresent[idx] {
			ind = append(ind, uint32(k))
			val = append(val, uVal[idx])
		}
	}
	w.setSparseResult(ind, val)
	return nil
}

// Transpose returns Aᵀ as a new matrix. Because Matrix already stores both
// orientations this is O(1): the views swap.
func Transpose[T comparable](a *Matrix[T]) *Matrix[T] {
	if a.Symmetric() {
		return a
	}
	return &Matrix[T]{csr: a.csc, csc: a.csr}
}

// Reduce folds u's stored values with the monoid (GrB_reduce to scalar).
func Reduce[T comparable](m Monoid[T], u *Vector[T]) T {
	acc := m.Identity
	u.Iterate(func(_ int, x T) bool {
		acc = m.Op(acc, x)
		return m.Terminal == nil || acc != *m.Terminal
	})
	return acc
}

// AssignScalar implements the masked scalar assign of Algorithm 1 Line 7
// (GrB_assign with a scalar): for every index the effective mask allows,
// set w(i) = value; all other positions keep their current contents
// (replace=false semantics). BFS uses it as v⟨f⟩ = depth.
//
// Sparse masks under structural complement materialize into the
// descriptor's pinned Workspace bitmap (or a pooled one), like MxV's masks
// — not into a fresh O(n) allocation — so per-iteration masked assigns are
// allocation-free once warm.
func AssignScalar[T, M comparable](w *Vector[T], mask *Vector[M], value T, desc *Descriptor) error {
	if w == nil || mask == nil {
		return fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if w.Size() != mask.Size() {
		return fmt.Errorf("%w: assign sizes %d, %d", ErrDimensionMismatch, w.Size(), mask.Size())
	}
	scmp := desc != nil && desc.StructuralComplement
	wVal, wPresent := w.denseView()
	if !scmp && mask.Format() == Sparse {
		// Fast path: walk the mask's nonzero list directly.
		for _, idx := range mask.ind {
			if !wPresent[idx] {
				wPresent[idx] = true
				w.nvals++
			}
			wVal[idx] = value
		}
		w.maybePromoteFull()
		return nil
	}
	ws := desc.workspace()
	pooled := ws == nil && mask.Format() == Sparse
	if pooled {
		ws = AcquireWorkspace(w.Size(), w.Size())
	}
	bits := maskBitsFor(ws, mask)
	for i := 0; i < w.Size(); i++ {
		if bits[i] != scmp {
			if !wPresent[i] {
				wPresent[i] = true
				w.nvals++
			}
			wVal[i] = value
		}
	}
	if pooled {
		ws.Release()
	}
	w.maybePromoteFull()
	return nil
}

// MxM computes the masked matrix-matrix product C⟨M⟩ = A ⊕.⊗ B with the
// output pattern restricted to the mask matrix's pattern — the paper's
// generalization of output-sparsity masking beyond matvec (Section 5.6),
// as used by triangle counting. The unmasked product is deliberately not
// offered: computing C = A·B without an output mask is exactly the
// asymptotic blow-up masking exists to avoid.
func MxM[T comparable](maskPattern *Matrix[T], s Semiring[T], a, b *Matrix[T], desc *Descriptor) (*Matrix[T], error) {
	if maskPattern == nil || a == nil || b == nil {
		return nil, fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	if a.NCols() != b.NRows() {
		return nil, fmt.Errorf("%w: %d×%d times %d×%d", ErrDimensionMismatch, a.NRows(), a.NCols(), b.NRows(), b.NCols())
	}
	if maskPattern.NRows() != a.NRows() || maskPattern.NCols() != b.NCols() {
		return nil, fmt.Errorf("%w: mask %d×%d for %d×%d product", ErrDimensionMismatch,
			maskPattern.NRows(), maskPattern.NCols(), a.NRows(), b.NCols())
	}
	mc := maskPattern.CSR()
	prod := core.MxMMasked(a.CSR(), b.CSR(), mc.Ptr, mc.Ind, toCoreSR(s), desc.coreOpts(desc.workspace()))
	return NewMatrixFromCSR(prod), nil
}

package graphblas

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"pushpull/internal/core"
)

// TestMxVShardedDifferential fuzzes the range-sharded pipeline against the
// dense map oracle across shard counts (including degenerate ones: more
// shards than vertices, shards smaller than a bitset word), forced and
// hybrid directions, every mask kind and the accumulate path. The sharded
// result must be value-identical to the unsharded semantics — sharding is
// an execution strategy, never a semantics change.
func TestMxVShardedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := MinPlusFloat64()
	accumOp := s.Add.Op

	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(40)
		a := randMatrix(rng, n, n, 0.1+rng.Float64()*0.3)
		base := randVec(rng, n, 0.2+rng.Float64()*0.6)

		mask := NewVector[bool](n)
		var allow []uint32
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				_ = mask.SetElement(i, true)
			} else {
				allow = append(allow, uint32(i))
			}
		}
		w0 := randVec(rng, n, 0.3)

		shardCounts := []int{1, 2, 7, runtime.NumCPU() + 1, n + 3}
		for _, shards := range shardCounts {
			for _, format := range []Format{Sparse, Bitset} {
				for _, dir := range []Direction{Auto, ForcePush, ForcePull} {
					for maskKind := 0; maskKind < 4; maskKind++ {
						for _, withAccum := range []bool{false, true} {
							name := fmt.Sprintf("trial %d shards=%d fmt=%v dir=%v mask=%d accum=%v", trial, shards, format, dir, maskKind, withAccum)
							u := inFormat(base, format)
							desc := &Descriptor{Direction: dir, Shards: shards}
							var m *Vector[bool]
							scmp := false
							switch maskKind {
							case 1:
								m = mask
							case 2, 3:
								m = mask
								scmp = true
								desc.StructuralComplement = true
								if maskKind == 3 {
									desc.MaskAllowList = allow
								}
							}

							want := oracleMxV(a, base, m, scmp, false, s)
							var accum BinaryOp[float64]
							w := NewVector[float64](n)
							if withAccum {
								accum = accumOp
								w = w0.Dup()
								want = oracleMerge(vecToMap(w0), want, accumOp)
							}
							if _, err := MxV(w, m, accum, s, a, u, desc); err != nil {
								t.Fatalf("%s: %v", name, err)
							}
							vecEquals(t, name, w, want)
						}
					}
				}
			}
		}
	}
}

// TestMxVShardedTranspose exercises the transposed orientation's shard
// cache key: Aᵀ sharding must split the column space and cut the CSR.
func TestMxVShardedTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := MinPlusFloat64()
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(30)
		a := randMatrix(rng, n, n, 0.2)
		u := randVec(rng, n, 0.4)
		for _, shards := range []int{3, 8} {
			desc := &Descriptor{Transpose: true, Shards: shards}
			want := oracleMxV(a, u, nil, false, true, s)
			w := NewVector[float64](n)
			if _, err := MxV(w, (*Vector[bool])(nil), nil, s, a, u, desc); err != nil {
				t.Fatalf("trial %d shards=%d: %v", trial, shards, err)
			}
			vecEquals(t, fmt.Sprintf("trial %d transpose shards=%d", trial, shards), w, want)
		}
	}
}

// TestMxVShardedPlanRecord checks the plan surface: per-shard entries
// covering the whole output range, the sharded rule, and hybrid detection
// consistent with the entries.
func TestMxVShardedPlanRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 200
	a := randMatrix(rng, n, n, 0.05)
	u := randVec(rng, n, 0.1)
	var plan core.Plan
	desc := &Descriptor{Shards: 8, Plan: &plan}
	w := NewVector[float64](n)
	if _, err := MxV(w, (*Vector[bool])(nil), nil, MinPlusFloat64(), a, u, desc); err != nil {
		t.Fatal(err)
	}
	if plan.Rule != core.RuleSharded {
		t.Fatalf("rule = %q, want %q", plan.Rule, core.RuleSharded)
	}
	if len(plan.Shards) != 8 {
		t.Fatalf("got %d shard entries, want 8", len(plan.Shards))
	}
	pulls, prev := 0, 0
	for i, sp := range plan.Shards {
		if sp.Lo != prev {
			t.Fatalf("shard %d starts at %d, want %d (ranges must tile the output)", i, sp.Lo, prev)
		}
		if sp.Hi <= sp.Lo {
			t.Fatalf("shard %d empty range [%d,%d)", i, sp.Lo, sp.Hi)
		}
		prev = sp.Hi
		if sp.Dir == core.Pull {
			pulls++
		}
	}
	if prev != n {
		t.Fatalf("shards end at %d, want %d", prev, n)
	}
	if wantHybrid := pulls > 0 && pulls < 8; plan.Hybrid != wantHybrid {
		t.Fatalf("Hybrid = %v with %d/8 pull shards", plan.Hybrid, pulls)
	}
	if plan.MeasuredNs <= 0 {
		t.Fatalf("MeasuredNs = %v, want > 0 on a plan-sink run", plan.MeasuredNs)
	}
}

// TestMxVShardedExactEdgesFromPackedFrontier pins that per-shard planning
// evidence does not degrade when the frontier arrives word-packed or as a
// bitmap — the common mid-traversal case after a pull decision settled the
// input's format. The recorded shard Edges must equal the sparse-frontier
// run's exact cut sums, not the density×InEdges estimate (which assumes
// average out-degrees and underprices push badly on skewed graphs).
func TestMxVShardedExactEdgesFromPackedFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 300
	a := randMatrix(rng, n, n, 0.04)
	u := randVec(rng, n, 0.05) // sparse enough to stay under the expansion bound
	sr := MinPlusFloat64()

	run := func(in *Vector[float64]) []float64 {
		var plan core.Plan
		desc := &Descriptor{Shards: 6, Plan: &plan}
		w := NewVector[float64](n)
		if _, err := MxV(w, (*Vector[bool])(nil), nil, sr, a, in, desc); err != nil {
			t.Fatal(err)
		}
		edges := make([]float64, len(plan.Shards))
		for i, sp := range plan.Shards {
			edges[i] = sp.Edges
		}
		return edges
	}

	want := run(u)
	for _, convert := range []struct {
		name string
		prep func(v *Vector[float64])
	}{
		{"bitset", func(v *Vector[float64]) { v.ToBitset() }},
		{"bitmap", func(v *Vector[float64]) { v.ToBitmap() }},
	} {
		v := u.Dup()
		convert.prep(v)
		got := run(v)
		if len(got) != len(want) {
			t.Fatalf("%s: %d shard entries, want %d", convert.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: shard %d edges %g, want exact %g", convert.name, i, got[i], want[i])
			}
		}
	}
}

// TestMxVShardedForcedUniform pins Direction and checks every shard obeys.
func TestMxVShardedForcedUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 100
	a := randMatrix(rng, n, n, 0.08)
	u := randVec(rng, n, 0.3)
	for _, dir := range []Direction{ForcePush, ForcePull} {
		var plan core.Plan
		desc := &Descriptor{Shards: 4, Direction: dir, Plan: &plan}
		w := NewVector[float64](n)
		if _, err := MxV(w, (*Vector[bool])(nil), nil, MinPlusFloat64(), a, u, desc); err != nil {
			t.Fatal(err)
		}
		wantDir := core.Push
		if dir == ForcePull {
			wantDir = core.Pull
		}
		for i, sp := range plan.Shards {
			if sp.Dir != wantDir {
				t.Fatalf("forced %v: shard %d chose %v", dir, i, sp.Dir)
			}
		}
		if plan.Hybrid {
			t.Fatalf("forced %v: plan reports hybrid", dir)
		}
	}
}

// TestMxVShardedZeroAlloc pins the steady state: after one warm-up call
// (shard geometry, plan scratch and corrector keys all materialize once),
// repeated sharded MxV calls on a pinned workspace allocate nothing —
// including with the full telemetry surface (plan sink + corrector +
// calibrated model) attached.
func TestMxVShardedZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 1 << 12
	var ri, ci []uint32
	var vals []bool
	for i := 0; i < n; i++ {
		for d := 0; d < 4; d++ {
			ri = append(ri, uint32(i))
			ci = append(ci, uint32(rng.Intn(n)))
			vals = append(vals, true)
		}
	}
	a, err := NewMatrixFromCOO(n, n, ri, ci, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := NewVector[bool](n)
	for i := 0; i < n; i += 20 {
		_ = u.SetElement(i, true)
	}
	u.ToSparse()
	visited := NewVector[bool](n)
	for i := 0; i < n; i += 3 {
		_ = visited.SetElement(i, true)
	}

	ws := AcquireWorkspace(n, n)
	defer ws.Release()
	model := core.CostModel{GatherNs: 1, ProbeBoolNs: 1, ProbeWordNs: 1, ProbeDenseNs: 1, RowNs: 1, ScatterNs: 1, ClearNs: 1, SortNs: 1, SetupNs: 50, StitchNs: 200}
	var corr core.Corrector
	var plan core.Plan
	desc := &Descriptor{
		Shards:               6,
		StructuralComplement: true,
		StructureOnly:        true,
		Workspace:            ws,
		CostModel:            &model,
		Corrector:            &corr,
		Plan:                 &plan,
	}
	s := OrAndBool()
	w := NewVector[bool](n)
	run := func() {
		if _, err := MxV(w, visited, nil, s, a, u, desc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm-up: geometry cache, plan scratch, corrector keys, output buffers
	}
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Fatalf("sharded MxV steady state allocates %v allocs/op, want 0", avg)
	}
}

package graphblas

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file is the differential property suite for the four-format
// storage engine: random matrices × random frontiers pushed through every
// combination of
//
//	direction   ForcePush, ForcePull, Auto
//	format      sparse, bitmap, bitset, dense (full pattern)
//	mask        none, plain, structural complement, scmp + allow-list
//	accumulate  nil, min
//
// and compared element-for-element against the dense reference
// implementation (oracleMxV from mxv_test.go). Every pairing must agree:
// the format-agnostic kernel views, the planner's dispatch, the sort-free
// bitmap push output and the format-preserving accumulate all ride through
// here.

// diffCase names one (direction, format, mask, accum) combination.
type diffCase struct {
	dir    Direction
	format Format
	mask   int // 0 none, 1 plain, 2 scmp, 3 scmp+allow-list
	accum  bool
}

func (c diffCase) String() string {
	masks := []string{"nomask", "mask", "scmp", "scmp+list"}
	return fmt.Sprintf("dir=%d format=%v mask=%s accum=%v", c.dir, c.format, masks[c.mask], c.accum)
}

// inFormat returns a copy of u converted to the requested storage format.
// Dense requires a full pattern; the caller only asks for it with one.
func inFormat(u *Vector[float64], f Format) *Vector[float64] {
	c := u.Dup()
	switch f {
	case Sparse:
		c.ToSparse()
	case Bitmap:
		c.ToBitmap()
		if c.Format() == Dense {
			// A full vector promotes; force the bitmap label back so the
			// bitmap code paths are the ones exercised.
			c.format = Bitmap
		}
	case Bitset:
		c.ToBitset()
	case Dense:
		c.ToDense()
	}
	return c
}

func TestMxVDifferentialAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	s := MinPlusFloat64() // min-plus doubles as the accumulate op test bed
	accumOp := s.Add.Op

	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(28)
		a := randMatrix(rng, n, n, 0.15+rng.Float64()*0.25)

		// Partial frontier for sparse/bitmap, full frontier for dense.
		uPartial := randVec(rng, n, 0.2+rng.Float64()*0.6)
		uFull := randVec(rng, n, 1.1) // density > 1 → every element present

		mask := NewVector[bool](n)
		var allow []uint32 // complement of the mask pattern, for scmp
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				_ = mask.SetElement(i, true)
			} else {
				allow = append(allow, uint32(i))
			}
		}

		w0 := randVec(rng, n, 0.3) // accumulate destination seed

		for _, format := range []Format{Sparse, Bitmap, Bitset, Dense} {
			base := uPartial
			if format == Dense {
				base = uFull
			}
			for _, dir := range []Direction{ForcePush, ForcePull, Auto} {
				for maskKind := 0; maskKind < 4; maskKind++ {
					for _, withAccum := range []bool{false, true} {
						tc := diffCase{dir: dir, format: format, mask: maskKind, accum: withAccum}
						u := inFormat(base, format)
						if u.Format() != format {
							t.Fatalf("%v: setup produced format %v", tc, u.Format())
						}

						desc := &Descriptor{Direction: dir}
						var m *Vector[bool]
						scmp := false
						switch maskKind {
						case 1:
							m = mask
						case 2, 3:
							m = mask
							scmp = true
							desc.StructuralComplement = true
							if maskKind == 3 {
								desc.MaskAllowList = allow
							}
						}

						want := oracleMxV(a, base, m, scmp, false, s)
						var accum BinaryOp[float64]
						w := NewVector[float64](n)
						if withAccum {
							accum = accumOp
							w = w0.Dup()
							// Fold the oracle product into the seed by min.
							merged := map[int]float64{}
							w0.Iterate(func(i int, x float64) bool { merged[i] = x; return true })
							for i, x := range want {
								if old, ok := merged[i]; !ok || x < old {
									merged[i] = x
								}
							}
							want = merged
						}

						if _, err := MxV(w, m, accum, s, a, u, desc); err != nil {
							t.Fatalf("trial %d %v: %v", trial, tc, err)
						}
						vecEquals(t, fmt.Sprintf("trial %d %v", trial, tc), w, want)
					}
				}
			}
		}
	}
}

// vecToMap flattens a vector into the oracle's map representation.
func vecToMap(v *Vector[float64]) map[int]float64 {
	out := map[int]float64{}
	v.Iterate(func(i int, x float64) bool { out[i] = x; return true })
	return out
}

// oracleAllows evaluates the effective mask at i on the oracle side.
func oracleAllows(mask *Vector[bool], scmp bool, i int) bool {
	if mask == nil {
		return true
	}
	_, err := mask.ExtractElement(i)
	return (err == nil) != scmp
}

// oracleMerge folds the masked product t into the seed w0 the way an
// accumulator does: op where both present, copy where only t is.
func oracleMerge(w0, t map[int]float64, accum BinaryOp[float64]) map[int]float64 {
	out := map[int]float64{}
	for i, x := range w0 {
		out[i] = x
	}
	for i, x := range t {
		if old, ok := out[i]; ok {
			out[i] = accum(old, x)
		} else {
			out[i] = x
		}
	}
	return out
}

// TestOpsDifferentialUnified fuzzes the newly-uniform operation surface —
// eWiseMult, eWiseAdd, apply, select, assignVector, assignScalar, extract —
// through every combination of
//
//	formats     u, v independently sparse / bitmap / dense(full)
//	mask        none, plain, structural complement, scmp + allow-list
//	accumulate  nil, min
//
// against dense map oracles. This is the acceptance gate for the OpSpec
// pipeline: every op must apply the mask to its computed output pattern,
// merge through the accumulator identically to MxV, and agree
// element-for-element regardless of operand storage formats.
func TestOpsDifferentialUnified(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	mul := func(a, b float64) float64 { return a * b }
	add := func(a, b float64) float64 { return a + b }
	minOp := MinPlusFloat64().Add.Op

	formats := []Format{Sparse, Bitmap, Bitset, Dense}
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(24)
		uPartial := randVec(rng, n, 0.2+rng.Float64()*0.5)
		vPartial := randVec(rng, n, 0.2+rng.Float64()*0.5)
		uFull := randVec(rng, n, 1.1)
		vFull := randVec(rng, n, 1.1)
		w0 := randVec(rng, n, 0.3)

		mask := NewVector[bool](n)
		var allow []uint32 // complement of the mask pattern, for scmp
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				_ = mask.SetElement(i, true)
			} else {
				allow = append(allow, uint32(i))
			}
		}
		indices := make([]uint32, n)
		for k := range indices {
			indices[k] = uint32(rng.Intn(n))
		}

		for _, uf := range formats {
			for _, vf := range formats {
				uBase, vBase := uPartial, vPartial
				if uf == Dense {
					uBase = uFull
				}
				if vf == Dense {
					vBase = vFull
				}
				um, vm := vecToMap(uBase), vecToMap(vBase)
				for maskKind := 0; maskKind < 4; maskKind++ {
					for _, withAccum := range []bool{false, true} {
						desc := &Descriptor{}
						var m *Vector[bool]
						scmp := false
						switch maskKind {
						case 1:
							m = mask
						case 2, 3:
							m = mask
							scmp = true
							desc.StructuralComplement = true
							if maskKind == 3 {
								desc.MaskAllowList = allow
							}
						}
						var accum BinaryOp[float64]
						if withAccum {
							accum = minOp
						}
						ctx := fmt.Sprintf("trial %d uf=%v vf=%v mask=%d accum=%v", trial, uf, vf, maskKind, withAccum)

						type opCase struct {
							name string
							run  func(w *Vector[float64], u, v *Vector[float64]) error
							want func() map[int]float64
						}
						cases := []opCase{
							{"ewise-mult", func(w, u, v *Vector[float64]) error {
								return Into(w).Mask(m).Accum(accum).With(desc).EWiseMult(mul, u, v)
							}, func() map[int]float64 {
								t := map[int]float64{}
								for i, x := range um {
									if y, ok := vm[i]; ok && oracleAllows(m, scmp, i) {
										t[i] = mul(x, y)
									}
								}
								return t
							}},
							{"ewise-add", func(w, u, v *Vector[float64]) error {
								return Into(w).Mask(m).Accum(accum).With(desc).EWiseAdd(add, u, v)
							}, func() map[int]float64 {
								t := map[int]float64{}
								for i := 0; i < n; i++ {
									if !oracleAllows(m, scmp, i) {
										continue
									}
									x, xok := um[i]
									y, yok := vm[i]
									switch {
									case xok && yok:
										t[i] = add(x, y)
									case xok:
										t[i] = x
									case yok:
										t[i] = y
									}
								}
								return t
							}},
							{"apply", func(w, u, _ *Vector[float64]) error {
								return Into(w).Mask(m).Accum(accum).With(desc).Apply(func(x float64) float64 { return 3 * x }, u)
							}, func() map[int]float64 {
								t := map[int]float64{}
								for i, x := range um {
									if oracleAllows(m, scmp, i) {
										t[i] = 3 * x
									}
								}
								return t
							}},
							{"select", func(w, u, _ *Vector[float64]) error {
								return Into(w).Mask(m).Accum(accum).With(desc).Select(func(i int, x float64) bool { return x > 1.5 }, u)
							}, func() map[int]float64 {
								t := map[int]float64{}
								for i, x := range um {
									if x > 1.5 && oracleAllows(m, scmp, i) {
										t[i] = x
									}
								}
								return t
							}},
							{"extract", func(w, u, _ *Vector[float64]) error {
								return Into(w).Mask(m).Accum(accum).With(desc).Extract(u, indices)
							}, func() map[int]float64 {
								t := map[int]float64{}
								for k, idx := range indices {
									if x, ok := um[int(idx)]; ok && oracleAllows(m, scmp, k) {
										t[k] = x
									}
								}
								return t
							}},
						}
						for _, oc := range cases {
							u := inFormat(uBase, uf)
							v := inFormat(vBase, vf)
							w := w0.Dup()
							if err := oc.run(w, u, v); err != nil {
								t.Fatalf("%s %s: %v", ctx, oc.name, err)
							}
							want := oc.want()
							if withAccum {
								want = oracleMerge(vecToMap(w0), want, minOp)
							}
							vecEquals(t, ctx+" "+oc.name, w, want)
						}

						// Assign ops merge instead of replacing, with the
						// mask filtering which positions are touched.
						{
							u := inFormat(uBase, uf)
							w := w0.Dup()
							if err := Into(w).Mask(m).Accum(accum).With(desc).AssignVector(u); err != nil {
								t.Fatalf("%s assign: %v", ctx, err)
							}
							want := vecToMap(w0)
							for i, x := range um {
								if !oracleAllows(m, scmp, i) {
									continue
								}
								if old, ok := want[i]; ok && withAccum {
									want[i] = minOp(old, x)
								} else {
									want[i] = x
								}
							}
							vecEquals(t, ctx+" assign", w, want)
						}
						{
							w := w0.Dup()
							if err := Into(w).Mask(m).Accum(accum).With(desc).AssignScalar(1.25); err != nil {
								t.Fatalf("%s assign-scalar: %v", ctx, err)
							}
							want := vecToMap(w0)
							for i := 0; i < n; i++ {
								if !oracleAllows(m, scmp, i) {
									continue
								}
								if old, ok := want[i]; ok && withAccum {
									want[i] = minOp(old, 1.25)
								} else {
									want[i] = 1.25
								}
							}
							vecEquals(t, ctx+" assign-scalar", w, want)
						}
					}
				}
			}
		}
	}
}

// TestOpsFormatPreserved pins the format-engine satellite: eWise and apply
// outputs follow the operand format lattice instead of unconditionally
// sparsifying — dense∘dense stays dense, bitmap operands produce bitmap,
// and all-sparse inputs stay sparse.
func TestOpsFormatPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	n := 40
	add := func(a, b float64) float64 { return a + b }

	uDense := randVec(rng, n, 1.1)
	uDense.ToDense()
	vDense := randVec(rng, n, 1.1)
	vDense.ToDense()
	uBitmap := randVec(rng, n, 0.4)
	uBitmap.ToBitmap()
	uSparse := randVec(rng, n, 0.4)
	vSparse := randVec(rng, n, 0.4)

	w := NewVector[float64](n)
	if err := Into(w).EWiseAdd(add, uDense, vDense); err != nil {
		t.Fatal(err)
	}
	if w.Format() != Dense {
		t.Fatalf("dense∘dense eWiseAdd produced %v, want dense", w.Format())
	}
	if err := Into(w).EWiseMult(add, uBitmap, vDense); err != nil {
		t.Fatal(err)
	}
	if w.Format() == Sparse {
		t.Fatalf("bitmap∘dense eWiseMult collapsed to sparse")
	}
	if err := Into(w).EWiseMult(add, uSparse, vSparse); err != nil {
		t.Fatal(err)
	}
	if w.Format() != Sparse {
		t.Fatalf("sparse∘sparse eWiseMult produced %v, want sparse", w.Format())
	}
	// Apply on a PageRank-style dense vector must not round-trip through a
	// sparse copy.
	if err := Into(w).Apply(func(x float64) float64 { return 2 * x }, uDense); err != nil {
		t.Fatal(err)
	}
	if w.Format() != Dense {
		t.Fatalf("apply on dense produced %v, want dense", w.Format())
	}
	if err := Into(w).Apply(func(x float64) float64 { return 2 * x }, uBitmap); err != nil {
		t.Fatal(err)
	}
	if w.Format() != Bitmap {
		t.Fatalf("apply on bitmap produced %v, want bitmap", w.Format())
	}
}

// TestMxVDifferentialAccumFormatPreserved pins the satellite fix: an
// accumulate into a small sparse destination must leave it sparse (the old
// mergeAccum densified unconditionally), and into bitmap/dense
// destinations must preserve those formats too.
func TestMxVDifferentialAccumFormatPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := MinPlusFloat64()
	n := 60
	a := randMatrix(rng, n, n, 0.1)
	u := randVec(rng, n, 0.1)

	w := NewVector[float64](n)
	_ = w.SetElement(3, 1)
	if _, err := MxV(w, (*Vector[bool])(nil), s.Add.Op, s, a, u.Dup(), &Descriptor{Direction: ForcePush}); err != nil {
		t.Fatal(err)
	}
	if w.Format() != Sparse {
		t.Fatalf("sparse accumulate target densified to %v", w.Format())
	}

	wb := NewVector[float64](n)
	_ = wb.SetElement(3, 1)
	wb.ToBitmap()
	if _, err := MxV(wb, (*Vector[bool])(nil), s.Add.Op, s, a, u.Dup(), &Descriptor{Direction: ForcePush}); err != nil {
		t.Fatal(err)
	}
	if wb.Format() != Bitmap {
		t.Fatalf("bitmap accumulate target became %v", wb.Format())
	}

	wd := NewVector[float64](n)
	wd.Fill(100)
	if _, err := MxV(wd, (*Vector[bool])(nil), s.Add.Op, s, a, u.Dup(), &Descriptor{Direction: ForcePush}); err != nil {
		t.Fatal(err)
	}
	if wd.Format() != Dense || wd.NVals() != n {
		t.Fatalf("dense accumulate target became %v (nvals %d)", wd.Format(), wd.NVals())
	}
}

// TestMxVBitmapPushOutput drives the sort-free push path directly: a
// frontier dense enough that the planner estimates a dense output must
// land the product in bitmap format under Auto, with the same elements the
// forced sparse-output path produces.
func TestMxVBitmapPushOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := PlusTimesFloat64()
	n := 200
	a := randMatrix(rng, n, n, 0.05)
	u := randVec(rng, n, 0.5) // half the vertices: push edges ≫ n/4

	want := oracleMxV(a, u, nil, false, false, s)

	// Forced push with NoAutoConvert keeps the legacy sparse output.
	wSparse := NewVector[float64](n)
	if _, err := MxV(wSparse, (*Vector[bool])(nil), nil, s, a, u.Dup(), &Descriptor{Direction: ForcePush, NoAutoConvert: true}); err != nil {
		t.Fatal(err)
	}
	vecEquals(t, "forced sparse-output push", wSparse, want)

	// Forced push *with* planning allowed: the plan's PushOutBitmap fires
	// and the output arrives in bitmap form without a radix pass.
	wBitmap := NewVector[float64](n)
	if _, err := MxV(wBitmap, (*Vector[bool])(nil), nil, s, a, u.Dup(), &Descriptor{Direction: ForcePush}); err != nil {
		t.Fatal(err)
	}
	if wBitmap.Format() == Sparse {
		t.Fatalf("dense push output stayed sparse; bitmap scatter did not engage")
	}
	vecEquals(t, "bitmap-output push", wBitmap, want)
}

package graphblas

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file is the differential property suite for the three-format
// storage engine: random matrices × random frontiers pushed through every
// combination of
//
//	direction   ForcePush, ForcePull, Auto
//	format      sparse, bitmap, dense (full pattern)
//	mask        none, plain, structural complement, scmp + allow-list
//	accumulate  nil, min
//
// and compared element-for-element against the dense reference
// implementation (oracleMxV from mxv_test.go). Every pairing must agree:
// the format-agnostic kernel views, the planner's dispatch, the sort-free
// bitmap push output and the format-preserving accumulate all ride through
// here.

// diffCase names one (direction, format, mask, accum) combination.
type diffCase struct {
	dir    Direction
	format Format
	mask   int // 0 none, 1 plain, 2 scmp, 3 scmp+allow-list
	accum  bool
}

func (c diffCase) String() string {
	masks := []string{"nomask", "mask", "scmp", "scmp+list"}
	return fmt.Sprintf("dir=%d format=%v mask=%s accum=%v", c.dir, c.format, masks[c.mask], c.accum)
}

// inFormat returns a copy of u converted to the requested storage format.
// Dense requires a full pattern; the caller only asks for it with one.
func inFormat(u *Vector[float64], f Format) *Vector[float64] {
	c := u.Dup()
	switch f {
	case Sparse:
		c.ToSparse()
	case Bitmap:
		c.ToBitmap()
		if c.Format() == Dense {
			// A full vector promotes; force the bitmap label back so the
			// bitmap code paths are the ones exercised.
			c.format = Bitmap
		}
	case Dense:
		c.ToDense()
	}
	return c
}

func TestMxVDifferentialAllFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	s := MinPlusFloat64() // min-plus doubles as the accumulate op test bed
	accumOp := s.Add.Op

	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(28)
		a := randMatrix(rng, n, n, 0.15+rng.Float64()*0.25)

		// Partial frontier for sparse/bitmap, full frontier for dense.
		uPartial := randVec(rng, n, 0.2+rng.Float64()*0.6)
		uFull := randVec(rng, n, 1.1) // density > 1 → every element present

		mask := NewVector[bool](n)
		var allow []uint32 // complement of the mask pattern, for scmp
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				_ = mask.SetElement(i, true)
			} else {
				allow = append(allow, uint32(i))
			}
		}

		w0 := randVec(rng, n, 0.3) // accumulate destination seed

		for _, format := range []Format{Sparse, Bitmap, Dense} {
			base := uPartial
			if format == Dense {
				base = uFull
			}
			for _, dir := range []Direction{ForcePush, ForcePull, Auto} {
				for maskKind := 0; maskKind < 4; maskKind++ {
					for _, withAccum := range []bool{false, true} {
						tc := diffCase{dir: dir, format: format, mask: maskKind, accum: withAccum}
						u := inFormat(base, format)
						if u.Format() != format {
							t.Fatalf("%v: setup produced format %v", tc, u.Format())
						}

						desc := &Descriptor{Direction: dir}
						var m *Vector[bool]
						scmp := false
						switch maskKind {
						case 1:
							m = mask
						case 2, 3:
							m = mask
							scmp = true
							desc.StructuralComplement = true
							if maskKind == 3 {
								desc.MaskAllowList = allow
							}
						}

						want := oracleMxV(a, base, m, scmp, false, s)
						var accum BinaryOp[float64]
						w := NewVector[float64](n)
						if withAccum {
							accum = accumOp
							w = w0.Dup()
							// Fold the oracle product into the seed by min.
							merged := map[int]float64{}
							w0.Iterate(func(i int, x float64) bool { merged[i] = x; return true })
							for i, x := range want {
								if old, ok := merged[i]; !ok || x < old {
									merged[i] = x
								}
							}
							want = merged
						}

						if _, err := MxV(w, m, accum, s, a, u, desc); err != nil {
							t.Fatalf("trial %d %v: %v", trial, tc, err)
						}
						vecEquals(t, fmt.Sprintf("trial %d %v", trial, tc), w, want)
					}
				}
			}
		}
	}
}

// TestMxVDifferentialAccumFormatPreserved pins the satellite fix: an
// accumulate into a small sparse destination must leave it sparse (the old
// mergeAccum densified unconditionally), and into bitmap/dense
// destinations must preserve those formats too.
func TestMxVDifferentialAccumFormatPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := MinPlusFloat64()
	n := 60
	a := randMatrix(rng, n, n, 0.1)
	u := randVec(rng, n, 0.1)

	w := NewVector[float64](n)
	_ = w.SetElement(3, 1)
	if _, err := MxV(w, (*Vector[bool])(nil), s.Add.Op, s, a, u.Dup(), &Descriptor{Direction: ForcePush}); err != nil {
		t.Fatal(err)
	}
	if w.Format() != Sparse {
		t.Fatalf("sparse accumulate target densified to %v", w.Format())
	}

	wb := NewVector[float64](n)
	_ = wb.SetElement(3, 1)
	wb.ToBitmap()
	if _, err := MxV(wb, (*Vector[bool])(nil), s.Add.Op, s, a, u.Dup(), &Descriptor{Direction: ForcePush}); err != nil {
		t.Fatal(err)
	}
	if wb.Format() != Bitmap {
		t.Fatalf("bitmap accumulate target became %v", wb.Format())
	}

	wd := NewVector[float64](n)
	wd.Fill(100)
	if _, err := MxV(wd, (*Vector[bool])(nil), s.Add.Op, s, a, u.Dup(), &Descriptor{Direction: ForcePush}); err != nil {
		t.Fatal(err)
	}
	if wd.Format() != Dense || wd.NVals() != n {
		t.Fatalf("dense accumulate target became %v (nvals %d)", wd.Format(), wd.NVals())
	}
}

// TestMxVBitmapPushOutput drives the sort-free push path directly: a
// frontier dense enough that the planner estimates a dense output must
// land the product in bitmap format under Auto, with the same elements the
// forced sparse-output path produces.
func TestMxVBitmapPushOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := PlusTimesFloat64()
	n := 200
	a := randMatrix(rng, n, n, 0.05)
	u := randVec(rng, n, 0.5) // half the vertices: push edges ≫ n/4

	want := oracleMxV(a, u, nil, false, false, s)

	// Forced push with NoAutoConvert keeps the legacy sparse output.
	wSparse := NewVector[float64](n)
	if _, err := MxV(wSparse, (*Vector[bool])(nil), nil, s, a, u.Dup(), &Descriptor{Direction: ForcePush, NoAutoConvert: true}); err != nil {
		t.Fatal(err)
	}
	vecEquals(t, "forced sparse-output push", wSparse, want)

	// Forced push *with* planning allowed: the plan's PushOutBitmap fires
	// and the output arrives in bitmap form without a radix pass.
	wBitmap := NewVector[float64](n)
	if _, err := MxV(wBitmap, (*Vector[bool])(nil), nil, s, a, u.Dup(), &Descriptor{Direction: ForcePush}); err != nil {
		t.Fatal(err)
	}
	if wBitmap.Format() == Sparse {
		t.Fatalf("dense push output stayed sparse; bitmap scatter did not engage")
	}
	vecEquals(t, "bitmap-output push", wBitmap, want)
}

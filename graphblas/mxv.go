package graphblas

import (
	"fmt"

	"pushpull/internal/core"
	"pushpull/internal/sparse"
)

// MxV computes w⟨mask⟩ = A ⊕.⊗ u (GrB_mxv): the masked matrix-vector
// product over semiring s, written into w. Pass a nil mask for the
// unmasked variant and a nil accum for replace semantics; with accum, the
// product t is merged into the existing w by w(i) = accum(w(i), t(i))
// where both are present.
//
// Direction optimization happens here. With Descriptor.Direction == Auto,
// the input u is first run through the sparse↔dense conversion heuristic
// (Section 6.3) and the kernel follows the storage format: dense input →
// row-based pull, sparse input → column-based push. The chosen direction
// is returned so callers can trace switching behaviour.
//
// w may alias u and/or mask; the product is computed into fresh storage
// and installed afterwards when aliasing requires it.
func MxV[T, M comparable](w *Vector[T], mask *Vector[M], accum BinaryOp[T], s Semiring[T], a *Matrix[T], u *Vector[T], desc *Descriptor) (core.Direction, error) {
	if w == nil || a == nil || u == nil {
		return core.Push, fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	transpose := desc != nil && desc.Transpose
	inDim, outDim := a.NCols(), a.NRows()
	if transpose {
		inDim, outDim = outDim, inDim
	}
	if u.Size() != inDim {
		return core.Push, fmt.Errorf("%w: input vector size %d, matrix wants %d", ErrDimensionMismatch, u.Size(), inDim)
	}
	if w.Size() != outDim {
		return core.Push, fmt.Errorf("%w: output vector size %d, matrix yields %d", ErrDimensionMismatch, w.Size(), outDim)
	}
	if mask != nil && mask.Size() != outDim {
		return core.Push, fmt.Errorf("%w: mask size %d, output is %d", ErrDimensionMismatch, mask.Size(), outDim)
	}

	// Orient the matrix: the pull kernel scans rows of G (= CSR of A, or
	// CSC when multiplying by Aᵀ); the push kernel gathers columns of G.
	rowG, colG := a.CSR(), a.CSC()
	if transpose {
		rowG, colG = colG, rowG
	}

	dir := chooseDirection(u, desc)
	sr := toCoreSR(s)

	// Resolve the scratch workspace: the descriptor's pinned one, or a
	// pooled one for the duration of this call (auto-pooling).
	ws := desc.workspace()
	pooled := ws == nil
	if pooled {
		ws = AcquireWorkspace(a.NRows(), a.NCols())
	}
	opts := desc.coreOpts(ws)

	var mv core.MaskView
	useMask := mask != nil
	if useMask {
		mv = core.MaskView{Bits: maskBitsFor(ws, mask), KnownEmpty: mask.knownEmpty()}
		if desc != nil {
			mv.Scmp = desc.StructuralComplement
			mv.List = desc.MaskAllowList
		}
	}

	var err error
	if accum != nil {
		// Compute the product into the workspace's scratch vector, then
		// merge into w.
		t := scratchVectorFor[T](ws, outDim)
		if err = mxvInto(t, u, mask, useMask, mv, rowG, colG, dir, sr, opts, ws); err == nil {
			err = mergeAccum(w, t, accum)
		}
	} else {
		err = mxvInto(w, u, mask, useMask, mv, rowG, colG, dir, sr, opts, ws)
	}
	if pooled {
		ws.Release()
	}
	return dir, err
}

// VxM computes w⟨mask⟩ = uᵀ·A (GrB_vxm), which equals Aᵀ·u; it simply
// flips the descriptor's transpose flag and calls MxV.
func VxM[T, M comparable](w *Vector[T], mask *Vector[M], accum BinaryOp[T], s Semiring[T], u *Vector[T], a *Matrix[T], desc *Descriptor) (core.Direction, error) {
	var flipped Descriptor
	if desc != nil {
		flipped = *desc
	}
	flipped.Transpose = !flipped.Transpose
	return MxV(w, mask, accum, s, a, u, &flipped)
}

// chooseDirection applies Optimization 1: honour a forced direction, else
// convert u by the switch-point heuristic and follow its format.
func chooseDirection[T comparable](u *Vector[T], desc *Descriptor) core.Direction {
	if desc != nil {
		switch desc.Direction {
		case ForcePush:
			return core.Push
		case ForcePull:
			return core.Pull
		}
		if !desc.NoAutoConvert {
			u.convertAuto(desc.effSwitchPoint())
		}
	} else {
		u.convertAuto(DefaultSwitchPoint)
	}
	if u.Format() == Dense {
		return core.Pull
	}
	return core.Push
}

// mxvInto runs the chosen kernel, writing the product into dst. When dst
// aliases the kernel inputs (pull writing over its own input) the
// workspace's scratch vector takes the write and storage is swapped in
// afterwards — the swap leaves dst's old buffers in the workspace, so
// repeated aliased calls ping-pong between two warm buffers instead of
// allocating.
func mxvInto[T, M comparable](dst *Vector[T], u *Vector[T], mask *Vector[M], useMask bool, mv core.MaskView, rowG, colG *sparse.CSR[T], dir core.Direction, sr core.SR[T], opts core.Opts, ws *Workspace) error {
	switch dir {
	case core.Pull:
		uVal, uPresent := u.denseView()
		target := dst
		aliased := sameVector(dst, u) || (useMask && sharesBits(dst, mv.Bits))
		if aliased {
			target = scratchVectorFor[T](ws, dst.Size())
		}
		wVal, wPresent := target.ensureDenseBuffers()
		var nvals int
		if useMask {
			nvals = core.RowMaskedMxv(wVal, wPresent, rowG, uVal, uPresent, mv, sr, opts)
		} else {
			nvals = core.RowMxv(wVal, wPresent, rowG, uVal, uPresent, sr, opts)
		}
		// Kernels report their output count, so no O(n) presence rescan.
		target.setDenseCount(nvals)
		if aliased {
			swapStorage(dst, target)
		}
	case core.Push:
		uInd, uVal := u.sparseView()
		var ind []uint32
		var val []T
		if useMask {
			ind, val = core.ColMaskedMxv(colG, uInd, uVal, mv, sr, opts)
		} else {
			ind, val = core.ColMxv(colG, uInd, uVal, sr, opts)
		}
		// The kernel result aliases workspace storage (opts.Ws is always
		// set here); copy into dst's own reusable buffers before the
		// workspace moves on.
		dst.setSparseCopy(ind, val)
	}
	return nil
}

// sameVector reports pointer identity.
func sameVector[T comparable](a, b *Vector[T]) bool { return a == b }

// sharesBits reports whether v's dense presence array is the exact slice
// handed out as mask bits (zero-copy masks from dense vectors).
func sharesBits[T comparable](v *Vector[T], bits []bool) bool {
	return v.dpresent != nil && len(bits) > 0 && len(v.dpresent) > 0 && &v.dpresent[0] == &bits[0]
}

// swapStorage moves src's contents into dst (constant time).
func swapStorage[T comparable](dst, src *Vector[T]) {
	dst.format = src.format
	dst.ind, src.ind = src.ind, dst.ind
	dst.val, src.val = src.val, dst.val
	dst.dval, src.dval = src.dval, dst.dval
	dst.dpresent, src.dpresent = src.dpresent, dst.dpresent
	dst.nvals = src.nvals
}

// mergeAccum folds t into w: w(i) = accum(w(i), t(i)) where both present,
// copy where only t is present, keep where only w is.
func mergeAccum[T comparable](w, t *Vector[T], accum BinaryOp[T]) error {
	if t.NVals() == 0 {
		return nil
	}
	wVal, wPresent := w.denseView()
	t.Iterate(func(i int, x T) bool {
		if wPresent[i] {
			wVal[i] = accum(wVal[i], x)
		} else {
			wVal[i] = x
			wPresent[i] = true
			w.nvals++
		}
		return true
	})
	return nil
}

// toCoreSR lowers a public semiring to the kernel representation.
func toCoreSR[T comparable](s Semiring[T]) core.SR[T] {
	return core.SR[T]{
		Add:      s.Add.Op,
		Id:       s.Add.Identity,
		Terminal: s.Add.Terminal,
		Mul:      s.Mul,
		One:      s.One,
	}
}

package graphblas

import (
	"fmt"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/faultinject"
	"pushpull/internal/sparse"
)

// MxV computes w⟨mask⟩ = A ⊕.⊗ u (GrB_mxv): the masked matrix-vector
// product over semiring sr, written into the spec's output vector. This is
// the pipeline entry point the whole operation surface shares; build the
// call as
//
//	Into(w).Mask(m).Accum(op).With(desc).MxV(sr, a, u)
//
// with any subset of the modifiers. Without an accumulator the product
// replaces w; with one, the product t is merged into the existing w by
// w(i) = accum(w(i), t(i)) where both are present.
//
// Direction optimization happens here. With Descriptor.Direction == Auto,
// a standalone planner compares the estimated push cost (sum of frontier
// out-degrees read off CSC.Ptr, times the merge's log factor) against the
// estimated pull cost (rows × average degree, discounted by the effective
// mask density), with hysteresis on the frontier trend; u's storage format
// then follows the chosen direction. Descriptor.SwitchPoint selects the
// legacy nnz/n ratio rule instead, and ForcePush/ForcePull pin the kernel
// outright. The chosen direction is returned so callers can trace
// switching behaviour; set Descriptor.Plan to capture the full cost
// record.
//
// w may alias u and/or the mask; the product is computed into fresh
// storage and installed afterwards when aliasing requires it.
//
// Faults are confined to the call: a panic in a kernel body or semiring
// operator returns as a *PanicError matching ErrKernelPanic (the workspace
// it ran on is dropped, not re-pooled), and a done context — per-call via
// WithContext or descriptor-wide via Descriptor.Context — aborts between
// kernel phases with a wrapped ErrCancelled. In both cases w is
// structurally valid but holds unspecified partial contents.
func (s OpSpec[T]) MxV(sr Semiring[T], a *Matrix[T], u *Vector[T]) (dir TraversalDirection, err error) {
	w, mask, accum, desc := s.w, s.mask, s.accum, s.desc
	if w == nil || a == nil || u == nil {
		return core.Push, fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	transpose := desc != nil && desc.Transpose
	inDim, outDim := a.NCols(), a.NRows()
	if transpose {
		inDim, outDim = outDim, inDim
	}
	if u.Size() != inDim {
		return core.Push, fmt.Errorf("%w: input vector size %d, matrix wants %d", ErrDimensionMismatch, u.Size(), inDim)
	}
	if w.Size() != outDim {
		return core.Push, fmt.Errorf("%w: output vector size %d, matrix yields %d", ErrDimensionMismatch, w.Size(), outDim)
	}
	if mask != nil && mask.Size() != outDim {
		return core.Push, fmt.Errorf("%w: mask size %d, output is %d", ErrDimensionMismatch, mask.Size(), outDim)
	}

	// Orient the matrix: the pull kernel scans rows of G (= CSR of A, or
	// CSC when multiplying by Aᵀ); the push kernel gathers columns of G.
	rowG, colG := a.CSR(), a.CSC()
	if transpose {
		rowG, colG = colG, rowG
	}

	// Range-sharded dispatch: Descriptor.Shards > 1 hands the call to the
	// per-shard hybrid pipeline, unless the matrix cannot be sharded (nil
	// shard set) — then the ordinary whole-operation path runs.
	if shards := effShards(desc, outDim); shards > 1 {
		if ss := a.shardSet(shards, transpose); ss != nil && ss.Shards() > 1 {
			return s.mxvSharded(sr, a, u, rowG, colG, ss, outDim)
		}
	}

	plan := planMxV(u, mask, desc, rowG, colG, outDim)
	dir = plan.Dir
	if desc != nil && desc.Plan != nil {
		*desc.Plan = plan
	}
	// Abort point between planning and kernel launch; later phases
	// re-check, so a cancel arriving mid-call is honoured at the next
	// boundary instead of after a full traversal step.
	if err = s.ctxErr(); err != nil {
		return dir, err
	}
	csr := toCoreSR(sr)

	// Resolve the scratch workspace: the descriptor's pinned one, or a
	// pooled one for the duration of this call (auto-pooling). The release
	// is deferred — it must also run on the recovered-panic path, where the
	// taint set by captureFault (registered later, so run first) turns it
	// into a discard.
	ws := desc.workspace()
	pooled := ws == nil
	if pooled {
		ws = AcquireWorkspace(a.NRows(), a.NCols())
		defer ws.Release()
	}
	defer captureFault(ws, &err)
	opts := desc.coreOpts(ws)

	var mv core.MaskView
	useMask := mask != nil
	if useMask {
		mv = core.MaskView{KnownEmpty: mask.maskKnownEmpty()}
		mv.Words, mv.Bits = mask.maskLowerWS(ws)
		if desc != nil {
			mv.Scmp = desc.StructuralComplement
			mv.List = desc.MaskAllowList
		}
	}

	// Kernel timing for the feedback loop and plan traces: a monotonic
	// time.Now pair around the kernel itself (merge and workspace handling
	// excluded), allocation-free, taken only when someone is listening.
	timed := desc != nil && (desc.Plan != nil || desc.Corrector != nil)
	var start time.Time
	if timed {
		start = time.Now()
	}
	if accum != nil {
		// Compute the product into the workspace's scratch vector, then
		// merge into w.
		t := scratchVectorFor[T](ws, outDim)
		mxvInto(t, u, useMask, mv, rowG, colG, plan, csr, opts, ws)
		if timed {
			plan.MeasuredNs = float64(time.Since(start).Nanoseconds())
		}
		// Second abort point: a cancel observed during the kernel leaves
		// the partial product unmerged, so w is untouched.
		if err = s.ctxErr(); err != nil {
			return dir, err
		}
		mergeInto(ws, w, t, accum, false, core.MaskView{})
	} else {
		mxvInto(w, u, useMask, mv, rowG, colG, plan, csr, opts, ws)
		if timed {
			plan.MeasuredNs = float64(time.Since(start).Nanoseconds())
		}
		if err = s.ctxErr(); err != nil {
			return dir, err
		}
	}
	if timed {
		// Only completed, uncancelled kernels feed the corrector's EWMA —
		// a partial traversal's timing would corrupt the feedback loop.
		desc.Corrector.Observe(plan.Dir, plan.PredictedNs, plan.MeasuredNs)
		if desc.Plan != nil {
			desc.Plan.MeasuredNs = plan.MeasuredNs
			desc.Plan.OutKind = kindOf(w.format)
		}
	}
	return dir, nil
}

// MxV is the positional form of OpSpec.MxV.
//
// Deprecated: use Into(w).Mask(mask).Accum(accum).With(desc).MxV(s, a, u);
// this wrapper remains for source compatibility and delegates to the
// unified pipeline.
func MxV[T, M comparable](w *Vector[T], mask *Vector[M], accum BinaryOp[T], s Semiring[T], a *Matrix[T], u *Vector[T], desc *Descriptor) (core.Direction, error) {
	return Into(w).Mask(mask).Accum(accum).With(desc).MxV(s, a, u)
}

// VxM is the positional form of OpSpec.VxM.
//
// Deprecated: use Into(w).Mask(mask).Accum(accum).With(desc).VxM(s, u, a);
// this wrapper remains for source compatibility and delegates to the
// unified pipeline.
func VxM[T, M comparable](w *Vector[T], mask *Vector[M], accum BinaryOp[T], s Semiring[T], u *Vector[T], a *Matrix[T], desc *Descriptor) (core.Direction, error) {
	return Into(w).Mask(mask).Accum(accum).With(desc).VxM(s, u, a)
}

// planMxV runs the direction planner for one MxV call and settles u's
// storage format toward the decision. Overrides keep their historical
// meaning: ForcePush/ForcePull pin the kernel (costs are still estimated
// for the trace), an explicit SwitchPoint selects the legacy ratio rule,
// and NoAutoConvert freezes u's format and dispatches on it.
func planMxV[T comparable](u *Vector[T], mask MaskVector, desc *Descriptor, rowG, colG *sparse.CSR[T], outDim int) core.Plan {
	var force *core.Direction
	if desc != nil {
		switch desc.Direction {
		case ForcePush:
			d := core.Push
			force = &d
		case ForcePull:
			d := core.Pull
			force = &d
		}
	}
	noAuto := desc != nil && desc.NoAutoConvert
	if force == nil && noAuto {
		// Format-follows-storage dispatch: NoAutoConvert under Auto leaves
		// the current format (and hence the kernel) untouched.
		dir := core.Push
		if u.Format() != Sparse {
			dir = core.Pull
		}
		return core.Plan{Op: core.OpMxV, Dir: dir, Rule: core.RuleFormat,
			FrontierNNZ: u.NVals(), N: u.Size(), Growing: true, Shrinking: true}
	}

	in := core.PlanInput{
		NNZ:           u.NVals(),
		N:             u.Size(),
		OutRows:       outDim,
		PushEdges:     -1,
		AvgDeg:        core.AvgRowDegree(rowG.NNZ(), rowG.Rows),
		MaskAllowFrac: 1,
		Force:         force,
		InKind:        kindOf(u.Format()),
	}
	if desc != nil {
		if desc.CostModel != nil {
			in.Model = *desc.CostModel
		}
		in.Correct = desc.Corrector
	}
	if ind, ok := u.SparseIndices(); ok {
		// Exact frontier out-degrees off CSC.Ptr. On forced-direction calls
		// with no plan sink the sum only feeds the bitmap-scatter decision
		// (algorithm-level planners like BFS's have already paid the full
		// O(nnz) pass), so stop as soon as it crosses the threshold — the
		// decision is unchanged and the second degree scan is bounded.
		limit := float64(len(colG.Ind)) + 1
		if force != nil && (desc == nil || desc.Plan == nil) {
			limit = core.BitmapOutFraction * float64(outDim)
		}
		edges := 0.0
		for _, i := range ind {
			edges += float64(colG.RowLen(int(i)))
			if edges >= limit {
				break
			}
		}
		in.PushEdges = edges
	}
	if desc != nil {
		in.SwitchPoint = desc.SwitchPoint
	}
	if mask != nil && outDim > 0 {
		scmp := desc != nil && desc.StructuralComplement
		if desc != nil && desc.MaskAllowList != nil {
			in.MaskAllowFrac = float64(len(desc.MaskAllowList)) / float64(outDim)
		} else {
			// Exact density where the storage makes it cheap: a
			// bitset-backed mask popcounts its words (immune to stale nvals
			// after raw word writes), a sparse mask counts its list;
			// bitmap/dense masks fall back to the tracked count.
			frac := float64(mask.maskNVals()) / float64(outDim)
			if scmp {
				frac = 1 - frac
			}
			in.MaskAllowFrac = frac
		}
	}

	// Hysteresis rides on the input vector only when the planner actually
	// decides; forced calls neither read nor disturb it.
	var st *core.PlanState
	if force == nil {
		st = &u.pstate
	}
	plan := core.DecideDirection(in, st)
	plan.Op = core.OpMxV
	if noAuto {
		// NoAutoConvert freezes formats on both sides of the call: the
		// input keeps its storage and the push output stays a sparse list
		// (the microbenchmarks rely on a forced kernel meaning that exact
		// pipeline).
		plan.PushOutBitmap = false
	} else if force == nil {
		u.settleFormat(plan, effConvertPoint(desc))
	}
	return plan
}

// effConvertPoint returns the storage-side sparsify threshold: the
// descriptor's SwitchPoint when set, else the paper's default.
func effConvertPoint(desc *Descriptor) float64 {
	if desc != nil && desc.SwitchPoint > 0 {
		return desc.SwitchPoint
	}
	return DefaultSwitchPoint
}

// mxvInto runs the chosen kernel, writing the product into dst. When dst
// aliases the kernel inputs (an output that is also the input or the mask)
// the workspace's scratch vector takes the write and storage is swapped in
// afterwards — the swap leaves dst's old buffers in the workspace, so
// repeated aliased calls ping-pong between two warm buffers instead of
// allocating.
func mxvInto[T comparable](dst *Vector[T], u *Vector[T], useMask bool, mv core.MaskView, rowG, colG *sparse.CSR[T], plan core.Plan, sr core.SR[T], opts core.Opts, ws *Workspace) {
	faultinject.Fire(faultinject.SiteMxVKernel)
	uv := u.kernelView()
	switch plan.Dir {
	case core.Pull:
		target := dst
		aliased := sameVector(dst, u) || (useMask && (sharesBits(dst, mv.Bits) || sharesWords(dst, mv.Words)))
		if aliased {
			target = scratchVectorFor[T](ws, dst.Size())
		}
		wVal, wPresent := target.ensureDenseBuffers()
		var nvals int
		if useMask {
			nvals = core.RowMaskedMxv(wVal, wPresent, rowG, uv, mv, sr, opts)
		} else {
			nvals = core.RowMxv(wVal, wPresent, rowG, uv, sr, opts)
		}
		// Kernels report their output count, so no O(n) presence rescan.
		target.setDenseCount(nvals)
		if aliased {
			swapStorage(dst, target)
		}
	case core.Push:
		if plan.PushOutBitmap && opts.Merge == core.MergeRadix {
			// Sort-free output: scatter products straight into bitmap
			// storage, skipping the radix pass. Gated on the default merge
			// strategy so the merge ablation still measures what it names.
			target := dst
			aliased := sameVector(dst, u) || (useMask && (sharesBits(dst, mv.Bits) || sharesWords(dst, mv.Words)))
			if aliased {
				target = scratchVectorFor[T](ws, dst.Size())
			}
			wVal, wPresent := target.ensureDenseBuffers()
			nvals := core.ColMxvBitmap(wVal, wPresent, colG, uv, mv, useMask, sr, opts)
			target.setDenseCount(nvals)
			if aliased {
				swapStorage(dst, target)
			}
			return
		}
		var ind []uint32
		var val []T
		if useMask {
			ind, val = core.ColMaskedMxv(colG, uv, mv, sr, opts)
		} else {
			ind, val = core.ColMxv(colG, uv, sr, opts)
		}
		// The kernel result aliases workspace storage (opts.Ws is always
		// set here); copy into dst's own reusable buffers before the
		// workspace moves on.
		dst.setSparseCopy(ind, val)
	}
}

// sameVector reports pointer identity.
func sameVector[T comparable](a, b *Vector[T]) bool { return a == b }

// sharesBits reports whether v's presence array is the exact slice handed
// out as mask bits (zero-copy masks from bitmap/dense vectors).
func sharesBits[T comparable](v *Vector[T], bits []bool) bool {
	return v.dpresent != nil && len(bits) > 0 && len(v.dpresent) > 0 && &v.dpresent[0] == &bits[0]
}

// sharesWords reports whether v's packed presence words are the exact
// slice handed out as mask words (zero-copy masks from bitset vectors).
func sharesWords[T comparable](v *Vector[T], words []uint64) bool {
	return v.dwords != nil && len(words) > 0 && len(v.dwords) > 0 && &v.dwords[0] == &words[0]
}

// swapStorage moves src's contents into dst (constant time).
func swapStorage[T comparable](dst, src *Vector[T]) {
	dst.format = src.format
	dst.ind, src.ind = src.ind, dst.ind
	dst.val, src.val = src.val, dst.val
	dst.dval, src.dval = src.dval, dst.dval
	dst.dpresent, src.dpresent = src.dpresent, dst.dpresent
	dst.dwords, src.dwords = src.dwords, dst.dwords
	dst.nvals = src.nvals
}

// mergeAccum folds t into w: the no-mask form of mergeInto (see
// execute.go), kept under its historical name for the accumulate tests.
func mergeAccum[T comparable](ws *Workspace, w, t *Vector[T], accum BinaryOp[T]) error {
	mergeInto(ws, w, t, accum, false, core.MaskView{})
	return nil
}

// toCoreSR lowers a public semiring to the kernel representation.
func toCoreSR[T comparable](s Semiring[T]) core.SR[T] {
	return core.SR[T]{
		Add:      s.Add.Op,
		Id:       s.Add.Identity,
		Terminal: s.Add.Terminal,
		Mul:      s.Mul,
		One:      s.One,
	}
}

package graphblas

import (
	"fmt"

	"pushpull/internal/core"
	"pushpull/internal/sparse"
)

// MxV computes w⟨mask⟩ = A ⊕.⊗ u (GrB_mxv): the masked matrix-vector
// product over semiring s, written into w. Pass a nil mask for the
// unmasked variant and a nil accum for replace semantics; with accum, the
// product t is merged into the existing w by w(i) = accum(w(i), t(i))
// where both are present.
//
// Direction optimization happens here. With Descriptor.Direction == Auto,
// the input u is first run through the sparse↔dense conversion heuristic
// (Section 6.3) and the kernel follows the storage format: dense input →
// row-based pull, sparse input → column-based push. The chosen direction
// is returned so callers can trace switching behaviour.
//
// w may alias u and/or mask; the product is computed into fresh storage
// and installed afterwards when aliasing requires it.
func MxV[T, M comparable](w *Vector[T], mask *Vector[M], accum BinaryOp[T], s Semiring[T], a *Matrix[T], u *Vector[T], desc *Descriptor) (core.Direction, error) {
	if w == nil || a == nil || u == nil {
		return core.Push, fmt.Errorf("%w: nil operand", ErrInvalidValue)
	}
	transpose := desc != nil && desc.Transpose
	inDim, outDim := a.NCols(), a.NRows()
	if transpose {
		inDim, outDim = outDim, inDim
	}
	if u.Size() != inDim {
		return core.Push, fmt.Errorf("%w: input vector size %d, matrix wants %d", ErrDimensionMismatch, u.Size(), inDim)
	}
	if w.Size() != outDim {
		return core.Push, fmt.Errorf("%w: output vector size %d, matrix yields %d", ErrDimensionMismatch, w.Size(), outDim)
	}
	if mask != nil && mask.Size() != outDim {
		return core.Push, fmt.Errorf("%w: mask size %d, output is %d", ErrDimensionMismatch, mask.Size(), outDim)
	}

	// Orient the matrix: the pull kernel scans rows of G (= CSR of A, or
	// CSC when multiplying by Aᵀ); the push kernel gathers columns of G.
	rowG, colG := a.CSR(), a.CSC()
	if transpose {
		rowG, colG = colG, rowG
	}

	dir := chooseDirection(u, desc)
	sr := toCoreSR(s)
	opts := desc.coreOpts()

	var mv core.MaskView
	useMask := mask != nil
	if useMask {
		mv = core.MaskView{Bits: mask.maskBits()}
		if desc != nil {
			mv.Scmp = desc.StructuralComplement
			mv.List = desc.MaskAllowList
		}
	}

	if accum != nil {
		// Compute the product into a scratch vector, then merge.
		t := NewVector[T](outDim)
		if err := mxvInto(t, u, mask, useMask, mv, rowG, colG, dir, sr, opts); err != nil {
			return dir, err
		}
		return dir, mergeAccum(w, t, accum)
	}
	return dir, mxvInto(w, u, mask, useMask, mv, rowG, colG, dir, sr, opts)
}

// VxM computes w⟨mask⟩ = uᵀ·A (GrB_vxm), which equals Aᵀ·u; it simply
// flips the descriptor's transpose flag and calls MxV.
func VxM[T, M comparable](w *Vector[T], mask *Vector[M], accum BinaryOp[T], s Semiring[T], u *Vector[T], a *Matrix[T], desc *Descriptor) (core.Direction, error) {
	var flipped Descriptor
	if desc != nil {
		flipped = *desc
	}
	flipped.Transpose = !flipped.Transpose
	return MxV(w, mask, accum, s, a, u, &flipped)
}

// chooseDirection applies Optimization 1: honour a forced direction, else
// convert u by the switch-point heuristic and follow its format.
func chooseDirection[T comparable](u *Vector[T], desc *Descriptor) core.Direction {
	if desc != nil {
		switch desc.Direction {
		case ForcePush:
			return core.Push
		case ForcePull:
			return core.Pull
		}
		if !desc.NoAutoConvert {
			u.convertAuto(desc.effSwitchPoint())
		}
	} else {
		u.convertAuto(DefaultSwitchPoint)
	}
	if u.Format() == Dense {
		return core.Pull
	}
	return core.Push
}

// mxvInto runs the chosen kernel, writing the product into dst. When dst
// aliases the kernel inputs (pull writing over its own input) a scratch
// vector is used and swapped in afterwards.
func mxvInto[T, M comparable](dst *Vector[T], u *Vector[T], mask *Vector[M], useMask bool, mv core.MaskView, rowG, colG *sparse.CSR[T], dir core.Direction, sr core.SR[T], opts core.Opts) error {
	switch dir {
	case core.Pull:
		uVal, uPresent := u.denseView()
		target := dst
		// The pull kernel writes dense buffers in place; if the output
		// aliases the input vector (f ← Aᵀf) or the mask's bitmap, write
		// into a scratch vector and swap storage afterwards.
		aliased := sameVector(dst, u) || (useMask && sharesBits(dst, mv.Bits))
		if aliased {
			target = NewVector[T](dst.Size())
		}
		wVal, wPresent := target.ensureDenseBuffers()
		if useMask {
			core.RowMaskedMxv(wVal, wPresent, rowG, uVal, uPresent, mv, sr, opts)
		} else {
			core.RowMxv(wVal, wPresent, rowG, uVal, uPresent, sr, opts)
		}
		target.recountDense()
		if aliased {
			swapStorage(dst, target)
		}
	case core.Push:
		uInd, uVal := u.sparseView()
		var ind []uint32
		var val []T
		if useMask {
			ind, val = core.ColMaskedMxv(colG, uInd, uVal, mv, sr, opts)
		} else {
			ind, val = core.ColMxv(colG, uInd, uVal, sr, opts)
		}
		dst.setSparseResult(ind, val)
	}
	return nil
}

// sameVector reports pointer identity.
func sameVector[T comparable](a, b *Vector[T]) bool { return a == b }

// sharesBits reports whether v's dense presence array is the exact slice
// handed out as mask bits (zero-copy masks from dense vectors).
func sharesBits[T comparable](v *Vector[T], bits []bool) bool {
	return v.dpresent != nil && len(bits) > 0 && len(v.dpresent) > 0 && &v.dpresent[0] == &bits[0]
}

// swapStorage moves src's contents into dst (constant time).
func swapStorage[T comparable](dst, src *Vector[T]) {
	dst.format = src.format
	dst.ind, src.ind = src.ind, dst.ind
	dst.val, src.val = src.val, dst.val
	dst.dval, src.dval = src.dval, dst.dval
	dst.dpresent, src.dpresent = src.dpresent, dst.dpresent
	dst.nvals = src.nvals
}

// mergeAccum folds t into w: w(i) = accum(w(i), t(i)) where both present,
// copy where only t is present, keep where only w is.
func mergeAccum[T comparable](w, t *Vector[T], accum BinaryOp[T]) error {
	if t.NVals() == 0 {
		return nil
	}
	wVal, wPresent := w.denseView()
	t.Iterate(func(i int, x T) bool {
		if wPresent[i] {
			wVal[i] = accum(wVal[i], x)
		} else {
			wVal[i] = x
			wPresent[i] = true
			w.nvals++
		}
		return true
	})
	return nil
}

// toCoreSR lowers a public semiring to the kernel representation.
func toCoreSR[T comparable](s Semiring[T]) core.SR[T] {
	return core.SR[T]{
		Add:      s.Add.Op,
		Id:       s.Add.Identity,
		Terminal: s.Add.Terminal,
		Mul:      s.Mul,
		One:      s.One,
	}
}

package graphblas

import (
	"context"

	"pushpull/internal/core"
	"pushpull/internal/par"
)

// DefaultSwitchPoint is the paper's α = β = 0.01 sparse/dense (push/pull)
// switch-point: once ~1% of vertices are in the frontier of a scale-free
// graph, a supervertex has almost surely been hit and pull wins.
const DefaultSwitchPoint = core.DefaultSwitchPoint

// TraversalDirection is the kernel orientation an operation reports having
// chosen (the second return of MxV and the Direction field of BFS traces).
// It aliases the internal kernel type so callers can name and compare it
// without importing internal packages.
type TraversalDirection = core.Direction

// The two traversal directions.
const (
	PushDirection TraversalDirection = core.Push
	PullDirection TraversalDirection = core.Pull
)

// Direction optionally pins MxV to one kernel.
type Direction int

const (
	// Auto lets MxV dispatch on the input vector's storage format after
	// applying the conversion heuristic (the paper's Optimization 1).
	Auto Direction = iota
	// ForcePush always uses the column-based (SpMSpV) kernel.
	ForcePush
	// ForcePull always uses the row-based (SpMV) kernel.
	ForcePull
)

// MergeStrategy selects the push-phase multiway-merge implementation —
// exposed for the ablation study; the default radix pipeline is the
// paper's choice.
type MergeStrategy int

const (
	// MergeRadix concatenates gathered lists, radix-sorts, and
	// segment-reduces (Algorithm 3).
	MergeRadix MergeStrategy = iota
	// MergeHeap uses a k-way heap merge (the Table 1 cost model's
	// formulation).
	MergeHeap
	// MergeSPA scatters through a dense sparse-accumulator.
	MergeSPA
)

// Descriptor modifies an operation's behaviour, mirroring GrB_Descriptor.
// The zero value is the default configuration; descriptors are plain data
// and may be shared between calls.
type Descriptor struct {
	// StructuralComplement uses ¬mask instead of mask (GrB_SCMP): indices
	// where the mask is *empty* pass. This is how BFS expresses "only
	// unvisited vertices" from the visited vector.
	StructuralComplement bool

	// Transpose multiplies by Aᵀ instead of A (GrB_INP0/GrB_TRAN). Because
	// the matrix stores both orientations this costs nothing — it swaps
	// which view each kernel reads, exactly the isomorphism the paper uses
	// to express push-pull as one formula.
	Transpose bool

	// Direction optionally forces push or pull, overriding the planner
	// (Optimization 1 override).
	Direction Direction

	// SwitchPoint, when positive, replaces the edge-based cost model with
	// the paper's legacy nnz/n ratio rule at that crossover — the paper's
	// "user can select this sparse/dense switching point by passing a
	// floating-point value through the Descriptor". It also sets the
	// storage-side sparsify threshold. Zero (the default) selects the cost
	// model with DefaultSwitchPoint as the storage threshold.
	SwitchPoint float64

	// NoAutoConvert freezes storage formats across the call: the input
	// vector keeps its current format (which also decides the kernel when
	// Direction is Auto) and the push output stays a sparse list instead
	// of taking the planner's bitmap-scatter path. The microbenchmarks use
	// it to measure a fixed kernel pipeline across sweeps.
	NoAutoConvert bool

	// StructureOnly runs kernels in pattern mode (Optimization 5): matrix
	// and vector values are never read and discovered outputs get the
	// semiring's One. Only meaningful for semirings whose ⊕ is idempotent
	// on {One}, such as Boolean OR.
	StructureOnly bool

	// NoEarlyExit suppresses the early-exit break even when the semiring
	// has an additive terminal (Optimization 3 override, for ablation).
	NoEarlyExit bool

	// Merge selects the push-phase merge implementation.
	Merge MergeStrategy

	// MaskAllowList, when non-nil, enumerates (sorted ascending) exactly
	// the output indices the effective mask allows, letting the masked
	// pull kernel skip the O(M) bitmap scan. This realizes the paper's
	// Section 3.2 amortization: BFS maintains the unvisited list across
	// iterations, paying O(M) once instead of per iteration. The caller
	// must keep the list consistent with the mask and complement flag.
	MaskAllowList []uint32

	// Shards, when > 1, range-shards MxV: the output index space splits
	// into that many contiguous, edge-balanced destination ranges
	// (boundaries cached on the matrix), and the direction planner runs
	// once per shard over shard-local frontier and mask densities — so a
	// single operation can pull its hub shards while pushing the sparse
	// tail, concurrently, each shard writing its own disjoint output
	// range. Descriptor.Direction still pins every shard to one kernel;
	// Plan (when set) carries the per-shard records in Plan.Shards, and
	// Corrector feedback is keyed per shard. Zero or one means unsharded.
	// NoAutoConvert disables sharding (format-follows-storage dispatch
	// bypasses the planner the shards need).
	Shards int

	// Sequential forces single-threaded kernels (profiling/debugging).
	Sequential bool

	// CostModel, when non-nil, prices the direction planner's estimates
	// with calibrated per-term nanosecond coefficients instead of unit RAM
	// costs, so Plan.PushCost/PullCost become wall-clock-comparable and
	// Plan.PredictedNs is set. Profiles are fitted by `ppbench calibrate`
	// (internal/calibrate) and loaded with `-tune`; nil keeps the unit
	// model.
	CostModel *core.CostModel

	// Corrector, when non-nil, closes the feedback loop: each MxV run with
	// this descriptor is timed (monotonic clock, no allocations) and the
	// (predicted, measured) pair folded into the corrector's per-direction
	// EWMA, which the planner multiplies into its next estimates. Only
	// meaningful alongside CostModel — the unit model sets no PredictedNs,
	// leaving the corrector inert. Like Workspace, a corrector is mutable
	// per-traversal state: do not share one across concurrent operations.
	Corrector *core.Corrector

	// Plan, when non-nil, receives the pipeline's decision record for each
	// operation run with this descriptor: for MxV the direction planner's
	// full record (chosen direction, estimated push/pull costs, trend
	// flags, rule), and for every op the operation name (Plan.Op) and the
	// storage kind the output was produced in (Plan.OutKind). ppbench and
	// the experiment harness use it to plot decision quality against
	// measured runtimes.
	Plan *core.Plan

	// Workspace, when non-nil, pins a scratch arena across calls so
	// iterative algorithms reach a zero-allocation steady state: gather
	// buffers, sort scratch, mask bitmaps and accumulate targets are all
	// reused call over call. When nil, each operation auto-acquires a
	// pooled workspace sized to the matrix and releases it on return.
	// Unlike the other fields a pinned workspace is mutable state: a
	// descriptor carrying one must not be shared by concurrent operations.
	Workspace *Workspace

	// Context, when non-nil, makes operations run with this descriptor
	// abortable: each op checks it between kernel phases and returns a
	// wrapped ErrCancelled once it is done, and the parallel kernels stop
	// claiming chunks as soon as the cancellation token bridged from it
	// trips. The live-path check is allocation-free. Like Workspace, a
	// descriptor carrying a Context holds mutable per-call state (the
	// cached token) and must not be shared by concurrent operations.
	Context context.Context

	// tok bridges Context to the par layer's chunk-claim checks, cached on
	// first use so steady-state calls allocate nothing.
	tok *par.Token
}

// coreOpts translates the descriptor into kernel options, threading the
// resolved workspace (the descriptor's pinned one, or the operation's
// auto-acquired one) down to the kernels.
func (d *Descriptor) coreOpts(ws *Workspace) core.Opts {
	var kw *core.Workspace
	if ws != nil {
		kw = ws.kernel
	}
	if d == nil {
		return core.Opts{EarlyExit: true, Ws: kw}
	}
	return core.Opts{
		StructureOnly: d.StructureOnly,
		EarlyExit:     !d.NoEarlyExit,
		Merge:         core.MergeKind(d.Merge),
		Sequential:    d.Sequential,
		Ws:            kw,
		Cancel:        d.cancelToken(),
	}
}

// workspace returns the pinned workspace, nil-safe. A workspace tainted by
// an earlier kernel panic is reported as absent, so subsequent operations
// fall back to fresh pooled scratch instead of running on corrupted arenas.
func (d *Descriptor) workspace() *Workspace {
	if d == nil || d.Workspace == nil || d.Workspace.tainted {
		return nil
	}
	return d.Workspace
}

// cancelToken returns the par-layer token for the descriptor's Context,
// cached across calls (and rebound if the caller swaps Context) so the
// steady-state path never allocates.
func (d *Descriptor) cancelToken() *par.Token {
	if d == nil || d.Context == nil {
		return nil
	}
	if d.tok == nil || d.tok.Context() != d.Context {
		d.tok = par.NewToken(d.Context)
	}
	return d.tok
}

// context returns the descriptor's context, nil-safe.
func (d *Descriptor) context() context.Context {
	if d == nil {
		return nil
	}
	return d.Context
}

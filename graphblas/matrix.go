package graphblas

import (
	"fmt"
	"sync"

	"pushpull/internal/core"
	"pushpull/internal/sparse"
)

// Matrix is a GraphBLAS matrix over element type T. It keeps the matrix in
// both row-major (CSR) and column-major (CSC) compressed form, because the
// push direction gathers columns while the pull direction scans rows — the
// paper's function-signature table in Section 6.3 requires both
// orientations to be available to the runtime. For pattern-symmetric
// matrices (undirected graphs) the two views share storage.
type Matrix[T comparable] struct {
	csr *sparse.CSR[T]
	csc *sparse.CSR[T] // csr of the transpose; may alias csr

	// Shard-boundary cache for range-sharded MxV (Descriptor.Shards):
	// edge-balanced output ranges plus the destination cut table into the
	// push-side CSC, computed once per (shard count, orientation) and
	// derived purely from the immutable Ptr/Ind arrays. Guarded by
	// shardMu because concurrent read-only operations may share a matrix.
	shardMu   sync.Mutex
	shardSets map[shardKey]*core.ShardSet
}

// shardKey keys the shard-boundary cache: the requested shard count and
// whether the operation multiplies by Aᵀ (which swaps which view is the
// output side).
type shardKey struct {
	shards     int
	transposed bool
}

// shardSet returns the cached edge-balanced shard boundaries and CSC cut
// table for the given shard count and orientation, building them on first
// use. Returns nil when the matrix cannot be sharded (degenerate dims, or
// nnz beyond the int32 cut-table range) — callers fall back to the
// unsharded pipeline. Negative results are cached too.
func (m *Matrix[T]) shardSet(shards int, transposed bool) *core.ShardSet {
	key := shardKey{shards, transposed}
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	if ss, ok := m.shardSets[key]; ok {
		return ss
	}
	rowG, colG := m.csr, m.csc
	if transposed {
		rowG, colG = colG, rowG
	}
	ss := core.BuildShardSet(rowG.Ptr, colG.Ptr, colG.Ind, shards)
	if m.shardSets == nil {
		m.shardSets = make(map[shardKey]*core.ShardSet, 2)
	}
	m.shardSets[key] = ss
	return ss
}

// PurgeShardCache drops the cached shard boundaries and cut tables; later
// sharded operations rebuild them on demand, so purging is always safe.
// The serving layer calls this when a retired snapshot's last reference
// releases, so a dead generation's derived structures free even while the
// Matrix itself is still reachable through a static graph source.
func (m *Matrix[T]) PurgeShardCache() {
	m.shardMu.Lock()
	m.shardSets = nil
	m.shardMu.Unlock()
}

// NewMatrixFromCOO builds a matrix from coordinate triples, folding
// duplicates with dup (last write wins if nil).
func NewMatrixFromCOO[T comparable](nrows, ncols int, rows, cols []uint32, vals []T, dup BinaryOp[T]) (*Matrix[T], error) {
	var dupFn func(T, T) T
	if dup != nil {
		dupFn = dup
	}
	csr, err := sparse.FromCOO(nrows, ncols, rows, cols, vals, dupFn)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidValue, err)
	}
	return NewMatrixFromCSR(csr), nil
}

// NewMatrixFromCSR wraps an existing CSR structure (taking ownership). The
// CSC view is built eagerly; if the pattern is symmetric and values match
// their transposed positions, the CSR is shared instead.
func NewMatrixFromCSR[T comparable](csr *sparse.CSR[T]) *Matrix[T] {
	m := &Matrix[T]{csr: csr}
	csc := sparse.Transpose(csr)
	if sameCSR(csr, csc) {
		m.csc = csr
	} else {
		m.csc = csc
	}
	return m
}

// sameCSR reports whether two CSRs are element-for-element identical
// (pattern and values), in which case one can stand in for the other.
func sameCSR[T comparable](a, b *sparse.CSR[T]) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.Ptr {
		if a.Ptr[i] != b.Ptr[i] {
			return false
		}
	}
	for i := range a.Ind {
		if a.Ind[i] != b.Ind[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// NRows returns the number of rows.
func (m *Matrix[T]) NRows() int { return m.csr.Rows }

// NCols returns the number of columns.
func (m *Matrix[T]) NCols() int { return m.csr.Cols }

// NVals returns the number of stored entries.
func (m *Matrix[T]) NVals() int { return m.csr.NNZ() }

// Symmetric reports whether the CSR and CSC views share storage, i.e. the
// matrix equals its transpose.
func (m *Matrix[T]) Symmetric() bool { return m.csc == m.csr }

// AvgDegree returns the mean number of stored entries per row — the d of
// the paper's cost model and direction heuristic.
func (m *Matrix[T]) AvgDegree() float64 { return sparse.AvgRowLen(m.csr) }

// MaxDegree returns the largest row population.
func (m *Matrix[T]) MaxDegree() int { return sparse.MaxRowLen(m.csr) }

// ExtractElement returns A(i, j), or ErrNoValue if that position is empty.
func (m *Matrix[T]) ExtractElement(i, j int) (T, error) {
	var zero T
	if i < 0 || i >= m.NRows() || j < 0 || j >= m.NCols() {
		return zero, fmt.Errorf("%w: (%d,%d) in %d×%d matrix", ErrIndexOutOfBounds, i, j, m.NRows(), m.NCols())
	}
	ind, val := m.csr.RowSpan(i)
	lo, hi := 0, len(ind)
	for lo < hi {
		mid := (lo + hi) / 2
		if ind[mid] < uint32(j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ind) && ind[lo] == uint32(j) {
		return val[lo], nil
	}
	return zero, ErrNoValue
}

// RowView exposes row i of the CSR view (indices and values). The returned
// slices alias internal storage and must not be modified.
func (m *Matrix[T]) RowView(i int) ([]uint32, []T) { return m.csr.RowSpan(i) }

// ColView exposes column j via the CSC view. The returned slices alias
// internal storage and must not be modified.
func (m *Matrix[T]) ColView(j int) ([]uint32, []T) { return m.csc.RowSpan(j) }

// CSR exposes the underlying row-major structure for internal consumers
// (kernels, the experiment harness). Treat as read-only.
func (m *Matrix[T]) CSR() *sparse.CSR[T] { return m.csr }

// CSC exposes the underlying column-major structure (the CSR of Aᵀ).
// Treat as read-only.
func (m *Matrix[T]) CSC() *sparse.CSR[T] { return m.csc }

package graphblas

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// smallBoolMatrix builds a tiny ring graph for fault-path tests.
func smallBoolMatrix(t *testing.T, n int) *Matrix[bool] {
	t.Helper()
	var r, c []uint32
	var v []bool
	for i := 0; i < n; i++ {
		r = append(r, uint32(i))
		c = append(c, uint32((i+1)%n))
		v = append(v, true)
	}
	m, err := NewMatrixFromCOO(n, n, r, c, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckContext(t *testing.T) {
	if err := CheckContext(nil); err != nil {
		t.Fatalf("nil context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := CheckContext(ctx); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	err := CheckContext(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled context: %v does not match ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v does not wrap the context cause", err)
	}
}

func TestPanicErrorMatchesSentinel(t *testing.T) {
	pe := NewPanicError("kaboom")
	if !errors.Is(pe, ErrKernelPanic) {
		t.Fatal("PanicError does not match ErrKernelPanic")
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q, want the panic value", pe.Error())
	}
}

// TestMxVCancelledBeforeKernel: a pre-cancelled context aborts MxV at the
// first phase boundary — through both WithContext and Descriptor.Context.
func TestMxVCancelledBeforeKernel(t *testing.T) {
	a := smallBoolMatrix(t, 8)
	sr := OrAndBool()
	u := NewVector[bool](8)
	_ = u.SetElement(0, true)
	w := NewVector[bool](8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := Into(w).WithContext(ctx).MxV(sr, a, u); !errors.Is(err, ErrCancelled) {
		t.Fatalf("WithContext: err = %v, want ErrCancelled", err)
	}
	desc := &Descriptor{Context: ctx}
	if _, err := Into(w).With(desc).MxV(sr, a, u); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Descriptor.Context: err = %v, want ErrCancelled", err)
	}
	// A live context must not disturb the call.
	live := &Descriptor{Context: context.Background()}
	if _, err := Into(w).With(live).MxV(sr, a, u); err != nil {
		t.Fatalf("live context: %v", err)
	}
}

// TestPipelineOpsCancelled: every pipeline op family honours a cancelled
// per-call context.
func TestPipelineOpsCancelled(t *testing.T) {
	n := 8
	u := NewVector[float64](n)
	v := NewVector[float64](n)
	w := NewVector[float64](n)
	for i := 0; i < n; i++ {
		_ = u.SetElement(i, float64(i))
		_ = v.SetElement(i, 1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plus := func(a, b float64) float64 { return a + b }
	id := func(x float64) float64 { return x }

	cases := []struct {
		name string
		call func() error
	}{
		{"EWiseAdd", func() error { return Into(w).WithContext(ctx).EWiseAdd(plus, u, v) }},
		{"EWiseMult", func() error { return Into(w).WithContext(ctx).EWiseMult(plus, u, v) }},
		{"Apply", func() error { return Into(w).WithContext(ctx).Apply(id, u) }},
		{"Select", func() error {
			return Into(w).WithContext(ctx).Select(func(i int, x float64) bool { return true }, u)
		}},
		{"AssignVector", func() error { return Into(w).WithContext(ctx).AssignVector(u) }},
		{"Extract", func() error {
			return Into(w).WithContext(ctx).Extract(u, []uint32{0, 1, 2, 3, 4, 5, 6, 7})
		}},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, ErrCancelled) {
			t.Errorf("%s: err = %v, want ErrCancelled", tc.name, err)
		}
	}
}

// TestUserOperatorPanicBecomesError: a panic inside a user-supplied operator
// must come back as an error matching ErrKernelPanic — never unwind into the
// caller — and the operation surface must keep working afterwards.
func TestUserOperatorPanicBecomesError(t *testing.T) {
	n := 8
	u := NewVector[float64](n)
	for i := 0; i < n; i++ {
		_ = u.SetElement(i, float64(i))
	}
	w := NewVector[float64](n)
	boom := func(float64) float64 { panic("operator boom") }

	// Non-aliased path (exec pipeline capture).
	err := Into(w).Apply(boom, u)
	if !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("Apply: err = %v, want ErrKernelPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "operator boom" || len(pe.Stack) == 0 {
		t.Fatalf("Apply: errors.As gave %+v", pe)
	}

	// In-place aliased fast path (direct capture).
	alias := u.Dup()
	if err := Into(alias).Apply(boom, alias); !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("in-place Apply: err = %v, want ErrKernelPanic", err)
	}

	// The surface must still work: same op with a sane operator.
	if err := Into(w).Apply(func(x float64) float64 { return x * 2 }, u); err != nil {
		t.Fatalf("Apply after fault: %v", err)
	}
	got, _ := w.ExtractElement(3)
	if got != 6 {
		t.Fatalf("post-fault Apply produced %v, want 6", got)
	}
}

// TestPanickedWorkspaceIsQuarantined: a fault under a pinned workspace must
// taint it — the descriptor falls back to fresh scratch and Release drops
// the arena — while later operations on the same descriptor stay correct.
func TestPanickedWorkspaceIsQuarantined(t *testing.T) {
	n := 8
	a := smallBoolMatrix(t, n)
	sr := OrAndBool()
	u := NewVector[bool](n)
	_ = u.SetElement(0, true)
	w := NewVector[bool](n)

	ws := AcquireWorkspace(n, n)
	defer ws.Release() // after the fault this is a documented no-op
	desc := &Descriptor{Workspace: ws}

	fu := NewVector[float64](n)
	for i := 0; i < n; i++ {
		_ = fu.SetElement(i, float64(i))
	}
	fw := NewVector[float64](n)
	boom := func(float64) float64 { panic("ws boom") }
	if err := Into(fw).With(desc).Apply(boom, fu); !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("err = %v, want ErrKernelPanic", err)
	}
	if !ws.tainted {
		t.Fatal("workspace not tainted after kernel panic")
	}
	if desc.workspace() != nil {
		t.Fatal("descriptor still hands out the tainted workspace")
	}

	// Later ops through the same descriptor fall back to pooled scratch and
	// must be correct.
	if _, err := Into(w).With(desc).MxV(sr, a, u); err != nil {
		t.Fatalf("MxV after fault: %v", err)
	}
	if w.NVals() != 1 {
		t.Fatalf("post-fault MxV nvals = %d, want 1", w.NVals())
	}
	if got, err := w.ExtractElement(n - 1); err != nil || !got {
		t.Fatal("post-fault MxV lost the ring edge 0→n-1 transposed result")
	}
}

package graphblas

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pushpull/internal/core"
)

func TestEWiseMultIntersection(t *testing.T) {
	u := NewVector[float64](8)
	v := NewVector[float64](8)
	_ = u.SetElement(1, 2)
	_ = u.SetElement(3, 4)
	_ = u.SetElement(5, 6)
	_ = v.SetElement(3, 10)
	_ = v.SetElement(5, 100)
	_ = v.SetElement(7, 1000)
	w := NewVector[float64](8)
	mul := func(a, b float64) float64 { return a * b }
	if err := EWiseMult(w, mul, u, v); err != nil {
		t.Fatal(err)
	}
	if w.NVals() != 2 {
		t.Fatalf("NVals=%d want 2", w.NVals())
	}
	if x, _ := w.ExtractElement(3); x != 40 {
		t.Fatalf("w[3]=%g", x)
	}
	if x, _ := w.ExtractElement(5); x != 600 {
		t.Fatalf("w[5]=%g", x)
	}
}

func TestEWiseAddUnion(t *testing.T) {
	u := NewVector[float64](8)
	v := NewVector[float64](8)
	_ = u.SetElement(1, 2)
	_ = u.SetElement(3, 4)
	_ = v.SetElement(3, 10)
	_ = v.SetElement(7, 1000)
	w := NewVector[float64](8)
	add := func(a, b float64) float64 { return a + b }
	if err := EWiseAdd(w, add, u, v); err != nil {
		t.Fatal(err)
	}
	if w.NVals() != 3 {
		t.Fatalf("NVals=%d want 3", w.NVals())
	}
	for i, want := range map[int]float64{1: 2, 3: 14, 7: 1000} {
		if x, _ := w.ExtractElement(i); x != want {
			t.Fatalf("w[%d]=%g want %g", i, x, want)
		}
	}
}

func TestEWiseProperty(t *testing.T) {
	// Mult pattern = intersection; Add pattern = union; on the
	// intersection Add and Mult agree with the op applied pairwise.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		u := NewVector[float64](n)
		v := NewVector[float64](n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				_ = u.SetElement(i, rng.Float64())
			}
			if rng.Intn(2) == 0 {
				_ = v.SetElement(i, rng.Float64())
			}
		}
		op := func(a, b float64) float64 { return a + 2*b }
		wm := NewVector[float64](n)
		wa := NewVector[float64](n)
		if EWiseMult(wm, op, u, v) != nil || EWiseAdd(wa, op, u, v) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			ux, ue := u.ExtractElement(i)
			vx, ve := v.ExtractElement(i)
			mx, me := wm.ExtractElement(i)
			ax, ae := wa.ExtractElement(i)
			both := ue == nil && ve == nil
			either := ue == nil || ve == nil
			if both != (me == nil) || either != (ae == nil) {
				return false
			}
			if both && (mx != op(ux, vx) || ax != op(ux, vx)) {
				return false
			}
			if ue == nil && ve != nil && ae == nil && ax != ux {
				return false
			}
			if ve == nil && ue != nil && ae == nil && ax != vx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyAndSelect(t *testing.T) {
	u := NewVector[float64](6)
	_ = u.SetElement(0, 1)
	_ = u.SetElement(2, -3)
	_ = u.SetElement(4, 5)
	w := NewVector[float64](6)
	if err := Apply(w, func(x float64) float64 { return 2 * x }, u); err != nil {
		t.Fatal(err)
	}
	if x, _ := w.ExtractElement(2); x != -6 {
		t.Fatalf("apply w[2]=%g", x)
	}
	// In place.
	if err := Apply(u, func(x float64) float64 { return x + 1 }, u); err != nil {
		t.Fatal(err)
	}
	if x, _ := u.ExtractElement(4); x != 6 {
		t.Fatalf("in-place apply u[4]=%g", x)
	}
	// In place on a dense vector.
	u.ToDense()
	if err := Apply(u, func(x float64) float64 { return -x }, u); err != nil {
		t.Fatal(err)
	}
	if x, _ := u.ExtractElement(4); x != -6 {
		t.Fatalf("dense in-place apply u[4]=%g", x)
	}

	sel := NewVector[float64](6)
	if err := Select(sel, func(_ int, x float64) bool { return x > 0 }, u); err != nil {
		t.Fatal(err)
	}
	if sel.NVals() != 1 {
		t.Fatalf("select NVals=%d want 1", sel.NVals())
	}
	if x, _ := sel.ExtractElement(2); x != 2 {
		t.Fatalf("select kept wrong value %g", x)
	}
}

func TestReduce(t *testing.T) {
	u := NewVector[float64](5)
	_ = u.SetElement(0, 3)
	_ = u.SetElement(3, 4)
	plus := PlusTimesFloat64().Add
	if got := Reduce(plus, u); got != 7 {
		t.Fatalf("Reduce=%g want 7", got)
	}
	// With terminal short-circuit: OR over bools.
	b := NewVector[bool](4)
	_ = b.SetElement(1, true)
	_ = b.SetElement(2, true)
	or := OrAndBool().Add
	if !Reduce(or, b) {
		t.Fatal("OR reduce should be true")
	}
	empty := NewVector[float64](5)
	if got := Reduce(plus, empty); got != 0 {
		t.Fatalf("empty reduce=%g", got)
	}
}

func TestAssignScalar(t *testing.T) {
	// v⟨f⟩ = depth, the BFS bookkeeping step.
	v := NewVector[int64](8)
	_ = v.SetElement(0, 1)
	f := NewVector[bool](8)
	_ = f.SetElement(2, true)
	_ = f.SetElement(5, true)
	if err := AssignScalar(v, f, 7, nil); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 3 {
		t.Fatalf("NVals=%d want 3", v.NVals())
	}
	for i, want := range map[int]int64{0: 1, 2: 7, 5: 7} {
		if x, _ := v.ExtractElement(i); x != want {
			t.Fatalf("v[%d]=%d want %d", i, x, want)
		}
	}
	// Complemented assign via a dense mask.
	f.ToDense()
	v2 := NewVector[int64](8)
	if err := AssignScalar(v2, f, 9, &Descriptor{StructuralComplement: true}); err != nil {
		t.Fatal(err)
	}
	if v2.NVals() != 6 {
		t.Fatalf("scmp NVals=%d want 6", v2.NVals())
	}
	if _, err := v2.ExtractElement(2); !errors.Is(err, ErrNoValue) {
		t.Fatal("masked-out index assigned")
	}
	// Dimension error.
	bad := NewVector[bool](3)
	if err := AssignScalar(v, bad, 0, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("dim mismatch: %v", err)
	}
}

func TestOpSpecPolymorphicMask(t *testing.T) {
	// Masks are structural: a float64 vector masks a bool op and vice
	// versa, and a typed-nil mask pointer means "no mask".
	n := 6
	f := NewVector[float64](n)
	_ = f.SetElement(1, 0.5)
	_ = f.SetElement(4, 2.5)
	v := NewVector[bool](n)
	if err := Into(v).Mask(f).AssignScalar(true); err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 2 {
		t.Fatalf("NVals=%d want 2", v.NVals())
	}
	if _, err := v.ExtractElement(4); err != nil {
		t.Fatal("masked-in index missing")
	}
	var nilMask *Vector[bool]
	w := NewVector[float64](n)
	if err := Into(w).Mask(nilMask).Apply(func(x float64) float64 { return -x }, f); err != nil {
		t.Fatal(err)
	}
	if w.NVals() != 2 {
		t.Fatalf("typed-nil mask: NVals=%d want 2 (unmasked)", w.NVals())
	}
}

func TestOpSpecPlanRecording(t *testing.T) {
	// Every pipeline op reports what ran through Descriptor.Plan.
	n := 8
	u := NewVector[float64](n)
	_ = u.SetElement(2, 1)
	v := NewVector[float64](n)
	_ = v.SetElement(2, 2)
	var plan core.Plan
	desc := &Descriptor{Plan: &plan}
	w := NewVector[float64](n)
	if err := Into(w).With(desc).EWiseMult(func(a, b float64) float64 { return a * b }, u, v); err != nil {
		t.Fatal(err)
	}
	if plan.Op != core.OpEWiseMult || plan.OutKind != core.KindSparse {
		t.Fatalf("plan = %q/%v, want ewise-mult/sparse", plan.Op, plan.OutKind)
	}
	ub := u.Dup()
	ub.ToBitmap()
	if err := Into(w).With(desc).Apply(func(x float64) float64 { return x }, ub); err != nil {
		t.Fatal(err)
	}
	if plan.Op != core.OpApply || plan.OutKind != core.KindBitmap {
		t.Fatalf("plan = %q/%v, want apply/bitmap", plan.Op, plan.OutKind)
	}
}

func TestOpSpecAccumVsReplace(t *testing.T) {
	// Without an accumulator the op replaces w; with one it merges.
	n := 5
	u := NewVector[float64](n)
	_ = u.SetElement(1, 10)
	w := NewVector[float64](n)
	_ = w.SetElement(0, 1)
	_ = w.SetElement(1, 2)
	if err := Into(w).Apply(func(x float64) float64 { return x }, u); err != nil {
		t.Fatal(err)
	}
	if w.NVals() != 1 {
		t.Fatalf("replace semantics: NVals=%d want 1", w.NVals())
	}
	w2 := NewVector[float64](n)
	_ = w2.SetElement(0, 1)
	_ = w2.SetElement(1, 2)
	if err := Into(w2).Accum(func(a, b float64) float64 { return a + b }).Apply(func(x float64) float64 { return x }, u); err != nil {
		t.Fatal(err)
	}
	if w2.NVals() != 2 {
		t.Fatalf("accum semantics: NVals=%d want 2", w2.NVals())
	}
	if x, _ := w2.ExtractElement(1); x != 12 {
		t.Fatalf("accum w2[1]=%g want 12", x)
	}
	if x, _ := w2.ExtractElement(0); x != 1 {
		t.Fatalf("accum w2[0]=%g want 1 (kept)", x)
	}
}

func TestOpsDimensionErrors(t *testing.T) {
	a := NewVector[float64](3)
	b := NewVector[float64](4)
	w := NewVector[float64](3)
	op := func(x, y float64) float64 { return x + y }
	if err := EWiseMult(w, op, a, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mult: %v", err)
	}
	if err := EWiseAdd(w, op, a, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("add: %v", err)
	}
	if err := Apply(w, func(x float64) float64 { return x }, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("apply: %v", err)
	}
	if err := Select(w, func(int, float64) bool { return true }, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("select: %v", err)
	}
	if err := EWiseMult(nil, op, a, a); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil w: %v", err)
	}
}

func TestMatrixAccessors(t *testing.T) {
	rows := []uint32{0, 1, 2, 0}
	cols := []uint32{1, 2, 0, 2}
	vals := []float64{1, 2, 3, 4}
	m, err := NewMatrixFromCOO(3, 3, rows, cols, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NRows() != 3 || m.NCols() != 3 || m.NVals() != 4 {
		t.Fatal("shape accessors wrong")
	}
	if x, err := m.ExtractElement(0, 2); err != nil || x != 4 {
		t.Fatalf("ExtractElement=%g,%v", x, err)
	}
	if _, err := m.ExtractElement(1, 0); !errors.Is(err, ErrNoValue) {
		t.Fatalf("empty position: %v", err)
	}
	if _, err := m.ExtractElement(5, 0); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("out of range: %v", err)
	}
	ind, val := m.RowView(0)
	if len(ind) != 2 || ind[0] != 1 || val[1] != 4 {
		t.Fatalf("RowView = %v %v", ind, val)
	}
	ind, val = m.ColView(2)
	if len(ind) != 2 || ind[0] != 0 || val[0] != 4 {
		t.Fatalf("ColView = %v %v", ind, val)
	}
	if m.MaxDegree() != 2 {
		t.Fatalf("MaxDegree=%d", m.MaxDegree())
	}
	if d := m.AvgDegree(); d < 1.3 || d > 1.4 {
		t.Fatalf("AvgDegree=%g", d)
	}
	if m.Symmetric() {
		t.Fatal("asymmetric matrix reported symmetric")
	}
}

func TestMatrixSymmetricSharing(t *testing.T) {
	rows := []uint32{0, 1, 1, 2}
	cols := []uint32{1, 0, 2, 1}
	vals := []bool{true, true, true, true}
	m, err := NewMatrixFromCOO(3, 3, rows, cols, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Symmetric() {
		t.Fatal("symmetric matrix should share CSR/CSC")
	}
	if m.CSR() != m.CSC() {
		t.Fatal("symmetric views should alias")
	}
}

func TestMxMMaskedTriangles(t *testing.T) {
	// 4-clique: sum over the masked square = 6·#triangles = 24.
	var r, c []uint32
	var v []float64
	for i := uint32(0); i < 4; i++ {
		for j := uint32(0); j < 4; j++ {
			if i != j {
				r = append(r, i)
				c = append(c, j)
				v = append(v, 1)
			}
		}
	}
	a, err := NewMatrixFromCOO(4, 4, r, c, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := PlusTimesFloat64()
	prod, err := MxM(a, s, a, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	csr := prod.CSR()
	for _, x := range csr.Val {
		sum += x
	}
	if sum != 24 {
		t.Fatalf("masked square sum=%g want 24", sum)
	}
	// Dimension errors.
	bad := randMatrix(rand.New(rand.NewSource(1)), 3, 5, 0.5)
	if _, err := MxM(a, s, a, bad, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("inner dim: %v", err)
	}
	if _, err := MxM(bad, s, a, a, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mask dim: %v", err)
	}
	if _, err := MxM[float64](nil, s, a, a, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil mask: %v", err)
	}
}

func TestSemiringProperties(t *testing.T) {
	// Monoid laws on the provided semirings, spot-checked.
	or := OrAndBool()
	if or.Add.Op(false, true) != true || or.Add.Identity != false {
		t.Fatal("bool semiring broken")
	}
	if or.Add.Terminal == nil || !*or.Add.Terminal {
		t.Fatal("bool semiring needs terminal true")
	}
	mp := MinPlusFloat64()
	if mp.Add.Op(3, 5) != 3 || mp.Mul(3, 5) != 8 {
		t.Fatal("min-plus broken")
	}
	if mp.Mul(mp.One, 7) != 7 {
		t.Fatal("min-plus One must be multiplicative identity")
	}
	ms := MinSecondUint32()
	if ms.Mul(3, 5) != 5 || ms.Add.Op(3, 5) != 3 {
		t.Fatal("min-second broken")
	}
	mt := MaxTimesFloat64()
	if mt.Add.Op(3, 5) != 5 || mt.Mul(3, 5) != 15 {
		t.Fatal("max-times broken")
	}
	pi := PlusTimesInt64()
	if pi.Add.Op(3, 5) != 8 || pi.Mul(3, 5) != 15 {
		t.Fatal("plus-times int broken")
	}
	if got := pi.Add.Reduce([]int64{1, 2, 3}); got != 6 {
		t.Fatalf("Monoid.Reduce=%d", got)
	}
}

package graphblas

import (
	"pushpull/internal/core"
	"pushpull/internal/pool"
)

// Workspace is the operation-level scratch arena that makes iterative
// GraphBLAS programs allocation-free in steady state. It wraps the kernel
// workspace (gather buffers, sort scratch, SPA arrays — see internal/core)
// and adds the object-model scratch this layer needs: the bitmap that
// sparse masks materialize into, and per-element-type scratch vectors used
// as the accumulate target and as the aliased-output bounce buffer.
//
// Lifecycle:
//
//	ws := graphblas.AcquireWorkspace(a.NRows(), a.NCols())
//	defer ws.Release()
//	desc.Workspace = ws
//	for ... { graphblas.MxV(w, mask, nil, sr, a, f, desc) }
//
// Every algorithm in pushpull/algorithms pins one this way for the run's
// lifetime. When no workspace is pinned, MxV auto-acquires one from a pool
// keyed by the matrix dimensions and releases it before returning, so even
// unpinned callers reuse warm buffers; pinning removes the per-call pool
// round-trip and is required for the strict 0 allocs/op steady state.
//
// A Workspace serves one operation at a time and must not be shared by
// concurrent calls; concurrent algorithm runs should each acquire their
// own. Scratch vectors may swap storage with user vectors (the aliased
// pull), which is exactly how buffers ping-pong instead of churning.
type Workspace struct {
	kernel     *core.Workspace
	rows, cols int
	tainted    bool

	maskWords   []uint64    // sparse-mask bitset words, scrubbed via maskTouched
	maskTouched []uint32    // indices set in maskWords by the previous mask
	scratch     map[any]any // zero value of T → *Vector[T] (product target)
	accum       map[any]any // zero value of T → *Vector[T] (accumulate merge)

	shardPlans  []core.ShardPlan // per-shard plan entries for sharded MxV
	frontierIdx []uint32         // expanded frontier indices for exact shard planning
}

// shardPlansFor returns the workspace's per-shard plan scratch sized to n
// entries, growing past demand once and then reusing (steady-state sharded
// calls allocate nothing). The entries are workspace-owned: a Plan sink's
// Shards slice aliases them until the next sharded operation on this
// workspace.
func (w *Workspace) shardPlansFor(n int) []core.ShardPlan {
	if cap(w.shardPlans) < n {
		w.shardPlans = make([]core.ShardPlan, n)
	}
	return w.shardPlans[:n]
}

// NewWorkspace returns an unpooled workspace for operations over a
// rows×cols matrix. Most callers want AcquireWorkspace instead.
func NewWorkspace(rows, cols int) *Workspace {
	return &Workspace{kernel: core.NewWorkspace(rows, cols), rows: rows, cols: cols}
}

// wsPool keys workspaces by matrix shape (see internal/pool).
var wsPool = pool.NewDim(NewWorkspace)

// AcquireWorkspace takes a workspace for a rows×cols matrix from the
// dimension-keyed pool, creating one if the pool is dry. Pair with Release.
func AcquireWorkspace(rows, cols int) *Workspace {
	return wsPool.Acquire(rows, cols)
}

// Release returns the workspace to its dimension pool (workspaces created
// with NewWorkspace donate their warm buffers the same way). Neither the
// workspace nor vectors still sharing storage with its scratch may be used
// afterwards. A workspace tainted by a kernel panic is discarded instead of
// pooled — the cost of one warm arena buys the guarantee that corrupted
// scratch never resurfaces under a later call.
func (w *Workspace) Release() {
	if w == nil || w.tainted {
		return
	}
	wsPool.Put(w.rows, w.cols, w)
}

// taint marks the workspace (and its kernel arena) as abandoned mid-kernel:
// a panic unwound through it, so internal invariants — the SPA's all-false
// presence array, staged loop operands, the mask scrub list — may be
// violated. Tainted workspaces are dropped on Release, and descriptors
// treat a tainted pinned workspace as absent.
func (w *Workspace) taint() {
	if w == nil {
		return
	}
	w.tainted = true
	w.kernel.Taint()
}

// maskLowerFor lowers a mask vector into the kernel mask layout: packed
// words or presence bytes, exactly one non-nil. Bitset vectors hand out
// their words zero-copy and bitmap/dense vectors their presence array;
// sparse vectors materialize into the workspace's reusable *word* buffer —
// 1/8 the footprint of the byte bitmap it replaced — scrubbed via the
// touched list in O(nnz(previous mask) + nnz(mask)), never O(n), so
// per-iteration sparse masks stop allocating and stop rescanning. With no
// workspace a sparse mask packs into a fresh word buffer (n/8 bytes, the
// one allocation of the unpinned path).
func maskLowerFor[M comparable](ws *Workspace, v *Vector[M]) (words []uint64, bits []bool) {
	switch v.format {
	case Bitset:
		return v.dwords, nil
	case Sparse:
	default:
		return nil, v.dpresent
	}
	nw := core.BitsetWords(v.n)
	if ws == nil {
		fresh := make([]uint64, nw)
		core.BitsetScatter(fresh, v.ind)
		return fresh, nil
	}
	full := ws.maskWords
	for _, i := range ws.maskTouched {
		core.BitsetUnset(full, int(i))
	}
	ws.maskTouched = ws.maskTouched[:0]
	if cap(full) < nw {
		ws.maskWords = make([]uint64, nw)
		full = ws.maskWords
	}
	w := full[:nw]
	core.BitsetScatter(w, v.ind)
	ws.maskTouched = append(ws.maskTouched, v.ind...)
	return w, nil
}

// scratchVectorFor returns the workspace's scratch vector for element type
// T, created on first use. It serves as the accumulate product target and
// the aliased-output bounce buffer; storage swaps with user vectors keep
// it warm.
func scratchVectorFor[T comparable](ws *Workspace, n int) *Vector[T] {
	ws.scratch = vectorFromMap[T](ws.scratch, n)
	var zero T
	return ws.scratch[any(zero)].(*Vector[T])
}

// accumScratchFor returns the workspace's accumulate-merge scratch vector
// for element type T — distinct from scratchVectorFor's vector, which
// holds the product being merged. The format-preserving sparse accumulate
// builds its merged list here and swaps storage with the destination, so
// repeated accumulating calls ping-pong two warm buffers.
func accumScratchFor[T comparable](ws *Workspace, n int) *Vector[T] {
	ws.accum = vectorFromMap[T](ws.accum, n)
	var zero T
	return ws.accum[any(zero)].(*Vector[T])
}

// vectorFromMap resolves the per-element-type scratch vector in m for
// length n, (re)creating it on first use or dimension change.
func vectorFromMap[T comparable](m map[any]any, n int) map[any]any {
	var zero T
	key := any(zero)
	if v, ok := m[key]; ok {
		if sv := v.(*Vector[T]); sv.n == n {
			return m
		}
	}
	if m == nil {
		m = make(map[any]any, 2)
	}
	m[key] = NewVector[T](n)
	return m
}

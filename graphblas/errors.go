package graphblas

import "errors"

// Error values mirror the GraphBLAS C API's error codes that are relevant
// to this implementation. Operations return wrapped versions carrying
// context; match with errors.Is.
var (
	// ErrDimensionMismatch corresponds to GrB_DIMENSION_MISMATCH: operand
	// shapes do not conform.
	ErrDimensionMismatch = errors.New("graphblas: dimension mismatch")
	// ErrIndexOutOfBounds corresponds to GrB_INDEX_OUT_OF_BOUNDS.
	ErrIndexOutOfBounds = errors.New("graphblas: index out of bounds")
	// ErrInvalidValue corresponds to GrB_INVALID_VALUE: a malformed
	// argument such as unsorted build input or a nil operand.
	ErrInvalidValue = errors.New("graphblas: invalid value")
	// ErrNoValue corresponds to GrB_NO_VALUE: element lookup at an empty
	// position.
	ErrNoValue = errors.New("graphblas: no value")
	// ErrCancelled reports that an operation observed its context done and
	// aborted between kernel phases. Returned errors wrap both this and the
	// context's own error, so errors.Is matches either. The output vector
	// is structurally valid but its contents are unspecified partial
	// progress.
	ErrCancelled = errors.New("graphblas: operation cancelled")
	// ErrKernelPanic reports that a kernel body or user-supplied operator
	// panicked during an operation. The concrete error is a *PanicError
	// carrying the panic value and stack; the panic is confined to the
	// operation — workers, pools and the planner survive — but the
	// workspace the call ran on is dropped rather than re-pooled.
	ErrKernelPanic = errors.New("graphblas: kernel panic")
)

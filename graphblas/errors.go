package graphblas

import "errors"

// Error values mirror the GraphBLAS C API's error codes that are relevant
// to this implementation. Operations return wrapped versions carrying
// context; match with errors.Is.
var (
	// ErrDimensionMismatch corresponds to GrB_DIMENSION_MISMATCH: operand
	// shapes do not conform.
	ErrDimensionMismatch = errors.New("graphblas: dimension mismatch")
	// ErrIndexOutOfBounds corresponds to GrB_INDEX_OUT_OF_BOUNDS.
	ErrIndexOutOfBounds = errors.New("graphblas: index out of bounds")
	// ErrInvalidValue corresponds to GrB_INVALID_VALUE: a malformed
	// argument such as unsorted build input or a nil operand.
	ErrInvalidValue = errors.New("graphblas: invalid value")
	// ErrNoValue corresponds to GrB_NO_VALUE: element lookup at an empty
	// position.
	ErrNoValue = errors.New("graphblas: no value")
)

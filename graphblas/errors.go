package graphblas

import "errors"

// Error values mirror the GraphBLAS C API's error codes that are relevant
// to this implementation. Operations return wrapped versions carrying
// context; match with errors.Is.
var (
	// ErrDimensionMismatch corresponds to GrB_DIMENSION_MISMATCH: operand
	// shapes do not conform.
	ErrDimensionMismatch = errors.New("graphblas: dimension mismatch")
	// ErrIndexOutOfBounds corresponds to GrB_INDEX_OUT_OF_BOUNDS.
	ErrIndexOutOfBounds = errors.New("graphblas: index out of bounds")
	// ErrInvalidValue corresponds to GrB_INVALID_VALUE: a malformed
	// argument such as unsorted build input or a nil operand.
	ErrInvalidValue = errors.New("graphblas: invalid value")
	// ErrNoValue corresponds to GrB_NO_VALUE: element lookup at an empty
	// position.
	ErrNoValue = errors.New("graphblas: no value")
	// ErrCancelled reports that an operation observed its context done and
	// aborted between kernel phases. Returned errors wrap both this and the
	// context's own error, so errors.Is matches either. The output vector
	// is structurally valid but its contents are unspecified partial
	// progress.
	ErrCancelled = errors.New("graphblas: operation cancelled")
	// ErrKernelPanic reports that a kernel body or user-supplied operator
	// panicked during an operation. The concrete error is a *PanicError
	// carrying the panic value and stack; the panic is confined to the
	// operation — workers, pools and the planner survive — but the
	// workspace the call ran on is dropped rather than re-pooled.
	ErrKernelPanic = errors.New("graphblas: kernel panic")
	// ErrBudgetExceeded reports that an operation was cancelled because its
	// caller's execution budget ran out — a cost-based bound, distinct from
	// a wall-clock deadline. It arrives through the same cancellation seam
	// as any other abort: callers install it as the cancel cause of the
	// Descriptor.Context (context.WithDeadlineCause / WithCancelCause), and
	// the returned error wraps both ErrCancelled and this sentinel, so
	// errors.Is distinguishes "the budget tripped" from "the deadline
	// expired" (context.DeadlineExceeded) and "the client walked away"
	// (context.Canceled). Partial progress follows the cancellation
	// contract: algorithms return their coherent partial results alongside
	// the error.
	ErrBudgetExceeded = errors.New("graphblas: execution budget exceeded")
)
